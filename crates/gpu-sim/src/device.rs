//! The simulated GPU device: kernel launches, transfers and accounting.
//!
//! [`GpuDevice`] glues the catalogue, memory manager, coalescing model and
//! interconnect model together. Its central operation is [`GpuDevice::launch`]:
//! given a [`KernelDesc`] and a closure that performs the real computation on
//! the host, it executes the closure (so results are exact), charges the cost
//! model, and returns both the result and the per-launch [`KernelMetrics`].
//!
//! Cost model in one paragraph: a launch pays a fixed launch overhead, a
//! compute term (`elements * flops / device GFLOPS`), and a memory term.
//! The memory term depends on where each input buffer lives: device-resident
//! buffers are read at device-memory bandwidth with the architecture-capped
//! coalescing penalty; UVA buffers are streamed over the interconnect with
//! the raw coalescing penalty (every wasted byte crosses the bus — this is
//! why NSM is 10-20x slower than DSM in Figure 10); Unified Memory buffers
//! migrate untouched pages over the interconnect on first touch and are read
//! at device bandwidth afterwards (the Figure 1 warm-query effect). Compute
//! and memory overlap, so the launch costs the maximum of the two, plus any
//! non-overlappable page-migration time.

use crate::access::AccessPattern;
use crate::catalog::GpuSpec;
use crate::fault::{FaultDecision, FaultInjector};
use crate::kernel::{KernelDesc, KernelMetrics};
use crate::memory::{AccessMode, BufferId, MemoryManager, Residency};
use h2tap_common::{H2Error, Result, SimDuration};

/// Direction of an explicit transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferDirection {
    /// Host to device (input copy).
    HostToDevice,
    /// Device to host (result copy).
    DeviceToHost,
}

/// Result of one kernel launch: the value computed by the host closure plus
/// the simulated cost.
#[derive(Debug, Clone)]
pub struct KernelRun<R> {
    /// The real result of the computation.
    pub result: R,
    /// Simulated cost of the launch.
    pub metrics: KernelMetrics,
}

/// Device-memory transaction size used by the coalescing model (one L2
/// cache-line-sized transaction per warp segment). Public so cost heuristics
/// outside the simulator (e.g. the scheduler's placement model) can reason
/// about the waste per random access without replaying a kernel.
pub const DEVICE_TRANSACTION_BYTES: u64 = 128;

/// Fixed cost of launching one kernel (driver + queue + scheduling).
const LAUNCH_OVERHEAD: SimDuration = SimDuration::from_micros(8);

/// Per-page overhead of a Unified Memory fault + migration.
const UM_FAULT_OVERHEAD_NANOS: u64 = 1_000;

/// A simulated GPU.
#[derive(Debug)]
pub struct GpuDevice {
    spec: GpuSpec,
    memory: MemoryManager,
    total_time: SimDuration,
    total_interconnect_bytes: u64,
    kernels_launched: u64,
    kernel_log: Vec<KernelMetrics>,
    fault: Option<FaultInjector>,
}

impl GpuDevice {
    /// Creates a device from a catalogue spec.
    pub fn new(spec: GpuSpec) -> Self {
        let memory = MemoryManager::new(&spec);
        Self {
            spec,
            memory,
            total_time: SimDuration::ZERO,
            total_interconnect_bytes: 0,
            kernels_launched: 0,
            kernel_log: Vec::new(),
            fault: None,
        }
    }

    /// Installs a fault injector: every subsequent launch consults it. A
    /// quiet injector (all-zero plan) is observationally identical to none.
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.fault = Some(injector);
    }

    /// True once an installed injector has permanently lost this device.
    pub fn is_lost(&self) -> bool {
        self.fault.as_ref().is_some_and(FaultInjector::is_lost)
    }

    /// The device's static description.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// The device's memory manager.
    pub fn memory(&self) -> &MemoryManager {
        &self.memory
    }

    /// Mutable access to the memory manager (buffer registration).
    pub fn memory_mut(&mut self) -> &mut MemoryManager {
        &mut self.memory
    }

    /// Registers an input buffer with the given access mode. Checks that the
    /// device generation actually supports the requested mode, mirroring the
    /// CUDA feature matrix of Section 2.1.
    pub fn register_buffer(&mut self, label: impl Into<String>, bytes: u64, mode: AccessMode) -> Result<BufferId> {
        match mode {
            AccessMode::Uva if !self.spec.architecture.supports_uva() => {
                return Err(H2Error::Config(format!(
                    "{} ({}) does not support UVA",
                    self.spec.name,
                    self.spec.architecture.name()
                )))
            }
            AccessMode::UnifiedMemory if !self.spec.architecture.supports_um() => {
                return Err(H2Error::Config(format!(
                    "{} ({}) does not support Unified Memory",
                    self.spec.name,
                    self.spec.architecture.name()
                )))
            }
            _ => {}
        }
        self.memory.register(label, bytes, mode)
    }

    /// Registers a buffer that already lives in device memory.
    pub fn register_device_buffer(&mut self, label: impl Into<String>, bytes: u64) -> Result<BufferId> {
        self.memory.register_device_resident(label, bytes)
    }

    /// Performs an explicit `cudaMemcpy`-style transfer from pageable host
    /// memory and returns its simulated duration.
    pub fn memcpy(&mut self, bytes: u64, _direction: TransferDirection) -> SimDuration {
        let t = self.spec.interconnect.pageable_transfer_time(bytes);
        self.total_time += t;
        self.total_interconnect_bytes += bytes;
        t
    }

    /// Launches a kernel: runs `body` on the host for the real result and
    /// charges the simulated cost of executing `desc` on this device.
    pub fn launch<R>(&mut self, desc: &KernelDesc, body: impl FnOnce() -> R) -> Result<KernelRun<R>> {
        let metrics = self.account(desc)?;
        let result = body();
        Ok(KernelRun { result, metrics })
    }

    /// Charges the cost of a kernel described by `desc` without running any
    /// host code (useful when the caller interleaves its own computation).
    pub fn account(&mut self, desc: &KernelDesc) -> Result<KernelMetrics> {
        if desc.elements == 0 {
            return Err(H2Error::InvalidKernel(format!("kernel {} has zero elements", desc.name)));
        }
        // Fault injection: one decision per launch, drawn from the device's
        // seeded injector. Stalls only add simulated time; failures surface
        // as typed faults before any cost is charged.
        let mut stall = SimDuration::ZERO;
        if let Some(injector) = self.fault.as_mut() {
            match injector.decide() {
                FaultDecision::Pass => {}
                FaultDecision::Stall(extra) => stall = extra,
                FaultDecision::Fail { kind, transient } => {
                    return Err(H2Error::Fault { site: injector.site().to_string(), kind, transient });
                }
            }
        }
        let mut interconnect_bytes = 0u64;
        let mut device_mem_bytes = 0u64;
        // Overlappable streaming time (device reads + UVA streaming).
        let mut streaming = SimDuration::ZERO;
        // Non-overlappable time (UM page migration happens before the warp
        // can proceed).
        let mut migration = SimDuration::ZERO;

        for read in &desc.reads {
            let info = self.memory.info(read.buffer)?.clone();
            match info.residency {
                Residency::Device => {
                    let (bytes, time) = self.device_read_cost(read.useful_bytes, read.pattern);
                    device_mem_bytes += bytes;
                    streaming += time;
                }
                Residency::HostUva => {
                    let (bytes, time) = self.uva_read_cost(read.useful_bytes, read.pattern);
                    interconnect_bytes += bytes;
                    streaming += time;
                }
                Residency::HostUm { .. } => {
                    // The kernel touches the address span covered by the
                    // access pattern; untouched-but-spanned bytes still
                    // migrate because migration is page-granular.
                    let span = Self::touched_span(read.useful_bytes, read.pattern);
                    let migrated = self.memory.touch_um(read.buffer, span)?;
                    if migrated > 0 {
                        let pages = migrated / self.memory.page_bytes().max(1);
                        migration += self.spec.interconnect.bulk_transfer_time(migrated)
                            + SimDuration::from_nanos(u128::from(pages) * u128::from(UM_FAULT_OVERHEAD_NANOS));
                        interconnect_bytes += migrated;
                    }
                    // Once resident, the read itself runs at device bandwidth.
                    let (bytes, time) = self.device_read_cost(read.useful_bytes, read.pattern);
                    device_mem_bytes += bytes;
                    streaming += time;
                }
            }
        }

        // Output writes are assumed coalesced into device/host memory at
        // device bandwidth (result sets in the paper's experiments are tiny).
        if desc.write_bytes > 0 {
            device_mem_bytes += desc.write_bytes;
            streaming += SimDuration::from_secs_f64(desc.write_bytes as f64 / self.spec.mem_bytes_per_sec());
        }

        let compute =
            SimDuration::from_secs_f64(desc.elements as f64 * desc.flops_per_element / (self.spec.fp32_gflops * 1e9));

        let memory_time = streaming + migration;
        let time = LAUNCH_OVERHEAD + stall + migration + compute.max(streaming);
        let metrics = KernelMetrics {
            name: desc.name.clone(),
            time,
            interconnect_bytes,
            device_mem_bytes,
            compute_time: compute,
            memory_time,
            launch_overhead: LAUNCH_OVERHEAD,
        };

        self.total_time += time;
        self.total_interconnect_bytes += interconnect_bytes;
        self.kernels_launched += 1;
        self.kernel_log.push(metrics.clone());
        Ok(metrics)
    }

    /// Cost of reading `useful_bytes` with `pattern` from device memory.
    fn device_read_cost(&self, useful_bytes: u64, pattern: AccessPattern) -> (u64, SimDuration) {
        let raw_wire = pattern.wire_bytes(useful_bytes, DEVICE_TRANSACTION_BYTES);
        // Newer architectures hide much of the non-coalescing waste behind
        // caches and deeper memory pipelines: cap the slowdown.
        let cap = self.spec.architecture.max_noncoalesced_penalty();
        let capped = ((useful_bytes as f64) * cap).min(raw_wire as f64).max(useful_bytes as f64) as u64;
        let time = SimDuration::from_secs_f64(capped as f64 / self.spec.mem_bytes_per_sec());
        (capped, time)
    }

    /// Cost of streaming `useful_bytes` with `pattern` over the interconnect
    /// (UVA zero-copy). Every wasted byte crosses the bus.
    fn uva_read_cost(&self, useful_bytes: u64, pattern: AccessPattern) -> (u64, SimDuration) {
        let mtu = self.spec.interconnect.mtu_bytes;
        let wire = pattern.wire_bytes(useful_bytes, mtu);
        let eff = self.spec.architecture.uva_streaming_efficiency();
        let effective_wire = (wire as f64 / eff).ceil() as u64;
        (wire, self.spec.interconnect.streaming_time(effective_wire))
    }

    /// Address span touched when `useful_bytes` are read with `pattern`.
    fn touched_span(useful_bytes: u64, pattern: AccessPattern) -> u64 {
        match pattern {
            AccessPattern::Sequential => useful_bytes,
            AccessPattern::Strided { stride_bytes, elem_bytes } => {
                let elems = useful_bytes / u64::from(elem_bytes.max(1));
                elems * u64::from(stride_bytes.max(1))
            }
            AccessPattern::Random { elem_bytes } => {
                let elems = useful_bytes / u64::from(elem_bytes.max(1));
                elems * u64::from(crate::memory::UM_PAGE_BYTES as u32)
            }
        }
    }

    /// Total simulated time accumulated by this device.
    pub fn total_time(&self) -> SimDuration {
        self.total_time
    }

    /// Total bytes moved over the interconnect.
    pub fn total_interconnect_bytes(&self) -> u64 {
        self.total_interconnect_bytes
    }

    /// Number of kernels launched.
    pub fn kernels_launched(&self) -> u64 {
        self.kernels_launched
    }

    /// Per-kernel log, in launch order.
    pub fn kernel_log(&self) -> &[KernelMetrics] {
        &self.kernel_log
    }

    /// Clears accumulated totals and the kernel log (buffer registrations are
    /// kept).
    pub fn reset_metrics(&mut self) {
        self.total_time = SimDuration::ZERO;
        self.total_interconnect_bytes = 0;
        self.kernels_launched = 0;
        self.kernel_log.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::GpuSpec;

    const GIB: u64 = 1 << 30;

    fn scan_desc(buffer: BufferId, bytes: u64) -> KernelDesc {
        KernelDesc::new("scan", bytes / 4)
            .flops_per_element(2.0)
            .read(buffer, bytes, AccessPattern::Sequential)
            .write(8)
    }

    #[test]
    fn launch_runs_the_body_and_returns_its_result() {
        let mut dev = GpuDevice::new(GpuSpec::gtx_980());
        let buf = dev.register_buffer("col", GIB, AccessMode::Uva).unwrap();
        let run = dev.launch(&scan_desc(buf, GIB), || 41 + 1).unwrap();
        assert_eq!(run.result, 42);
        assert!(run.metrics.time > SimDuration::ZERO);
        assert_eq!(dev.kernels_launched(), 1);
    }

    #[test]
    fn zero_element_kernels_are_rejected() {
        let mut dev = GpuDevice::new(GpuSpec::gtx_980());
        let desc = KernelDesc::new("empty", 0);
        assert!(dev.account(&desc).is_err());
    }

    #[test]
    fn uva_unsupported_on_tesla_generation() {
        let mut dev = GpuDevice::new(GpuSpec::geforce_8800());
        assert!(dev.register_buffer("x", 1 << 20, AccessMode::Uva).is_err());
    }

    #[test]
    fn um_unsupported_on_fermi() {
        let mut dev = GpuDevice::new(GpuSpec::tesla_m2090());
        assert!(dev.register_buffer("x", 1 << 20, AccessMode::UnifiedMemory).is_err());
        assert!(dev.register_buffer("x", 1 << 20, AccessMode::Uva).is_ok());
    }

    #[test]
    fn um_second_query_is_much_faster_than_first() {
        // Figure 1: under UM the first query pays the migration, the
        // remaining queries run at device bandwidth (2.5x faster than UVA).
        let mut dev = GpuDevice::new(GpuSpec::gtx_980());
        let buf = dev.register_buffer("col", 2 * GIB, AccessMode::UnifiedMemory).unwrap();
        let first = dev.account(&scan_desc(buf, 2 * GIB)).unwrap();
        let second = dev.account(&scan_desc(buf, 2 * GIB)).unwrap();
        assert!(
            first.time.as_secs_f64() > 3.0 * second.time.as_secs_f64(),
            "first {} second {}",
            first.time,
            second.time
        );
        assert_eq!(second.interconnect_bytes, 0);
    }

    #[test]
    fn uva_on_fermi_is_slower_than_memcpy_but_faster_on_maxwell() {
        // Figure 1's crossover: UVA loses to memcpy on Fermi and wins on
        // Maxwell.
        let bytes = 2 * GIB;
        let run = |spec: GpuSpec, mode: AccessMode| -> f64 {
            let mut dev = GpuDevice::new(spec);
            match mode {
                AccessMode::Memcpy => {
                    let buf = dev.register_buffer("col", bytes, AccessMode::Memcpy).unwrap();
                    let copy_in = dev.memcpy(bytes, TransferDirection::HostToDevice);
                    let k = dev.account(&scan_desc(buf, bytes)).unwrap();
                    let copy_out = dev.memcpy(8, TransferDirection::DeviceToHost);
                    (copy_in + k.time + copy_out).as_secs_f64()
                }
                _ => {
                    let buf = dev.register_buffer("col", bytes, mode).unwrap();
                    dev.account(&scan_desc(buf, bytes)).unwrap().time.as_secs_f64()
                }
            }
        };
        let fermi_memcpy = run(GpuSpec::tesla_m2090(), AccessMode::Memcpy);
        let fermi_uva = run(GpuSpec::tesla_m2090(), AccessMode::Uva);
        let maxwell_memcpy = run(GpuSpec::gtx_980(), AccessMode::Memcpy);
        let maxwell_uva = run(GpuSpec::gtx_980(), AccessMode::Uva);
        assert!(fermi_uva > 1.5 * fermi_memcpy, "fermi uva {fermi_uva} memcpy {fermi_memcpy}");
        assert!(maxwell_uva < maxwell_memcpy, "maxwell uva {maxwell_uva} memcpy {maxwell_memcpy}");
        // Maxwell is faster than Fermi across the board (PCIe 3.0 vs 2.0).
        assert!(maxwell_memcpy < fermi_memcpy);
    }

    #[test]
    fn strided_reads_cost_more_than_sequential_over_uva() {
        let mut dev = GpuDevice::new(GpuSpec::gtx_980());
        let buf = dev.register_buffer("table", 4 * GIB, AccessMode::Uva).unwrap();
        let useful = GIB;
        let seq = KernelDesc::new("dsm", useful / 4).read(buf, useful, AccessPattern::Sequential);
        let strided = KernelDesc::new("nsm", useful / 4).read(
            buf,
            useful,
            AccessPattern::Strided { stride_bytes: 64, elem_bytes: 4 },
        );
        let t_seq = dev.account(&seq).unwrap().time.as_secs_f64();
        let t_str = dev.account(&strided).unwrap().time.as_secs_f64();
        assert!(t_str > 8.0 * t_seq, "strided {t_str} sequential {t_seq}");
    }

    #[test]
    fn device_resident_noncoalesced_penalty_is_capped() {
        // Figure 11: when data is GPU-resident the NSM penalty collapses to
        // 2-3x instead of >10x.
        let mut dev = GpuDevice::new(GpuSpec::gtx_980());
        let buf = dev.register_device_buffer("table", GIB).unwrap();
        let useful = 128 << 20;
        let seq = KernelDesc::new("dsm", useful / 4).read(buf, useful, AccessPattern::Sequential);
        let strided = KernelDesc::new("nsm", useful / 4).read(
            buf,
            useful,
            AccessPattern::Strided { stride_bytes: 64, elem_bytes: 4 },
        );
        let t_seq = dev.account(&seq).unwrap().time.as_secs_f64();
        let t_str = dev.account(&strided).unwrap().time.as_secs_f64();
        let ratio = t_str / t_seq;
        assert!((1.5..3.0).contains(&ratio), "device NSM/DSM ratio {ratio}");
    }

    #[test]
    fn injected_faults_surface_as_typed_errors_and_stalls_add_time() {
        use crate::fault::{DeviceLossPoint, FaultPlan};
        use h2tap_common::FaultKind;
        // A scheduled loss at launch 1: the first launch succeeds, every
        // later one fails persistently.
        let mut plan = FaultPlan::quiet(3);
        plan.device_loss_at = Some(DeviceLossPoint { site: "gpu".into(), device: 0, launch: 1 });
        let mut dev = GpuDevice::new(GpuSpec::gtx_980());
        dev.set_fault_injector(plan.injector_for("gpu", 0));
        let buf = dev.register_buffer("col", GIB, AccessMode::Uva).unwrap();
        assert!(dev.account(&scan_desc(buf, GIB)).is_ok());
        match dev.account(&scan_desc(buf, GIB)) {
            Err(H2Error::Fault { site, kind, transient }) => {
                assert_eq!(site, "gpu");
                assert_eq!(kind, FaultKind::DeviceLost);
                assert!(!transient);
            }
            other => panic!("expected a device-lost fault, got {other:?}"),
        }
        assert!(dev.is_lost());
        // A guaranteed stall adds exactly the penalty to the launch time.
        let mut stall_plan = FaultPlan::quiet(3);
        stall_plan.interconnect_stall_rate = 1.0;
        stall_plan.stall_penalty = SimDuration::from_micros(500);
        let mut clean = GpuDevice::new(GpuSpec::gtx_980());
        let b2 = clean.register_buffer("col", GIB, AccessMode::Uva).unwrap();
        let base = clean.account(&scan_desc(b2, GIB)).unwrap().time;
        let mut stalled = GpuDevice::new(GpuSpec::gtx_980());
        stalled.set_fault_injector(stall_plan.injector_for("gpu", 0));
        let b3 = stalled.register_buffer("col", GIB, AccessMode::Uva).unwrap();
        let slow = stalled.account(&scan_desc(b3, GIB)).unwrap().time;
        assert_eq!(slow, base + SimDuration::from_micros(500));
    }

    #[test]
    fn quiet_injector_is_observationally_identical_to_none() {
        use crate::fault::FaultPlan;
        let run = |inject: bool| -> (SimDuration, u64) {
            let mut dev = GpuDevice::new(GpuSpec::gtx_980());
            if inject {
                dev.set_fault_injector(FaultPlan::quiet(99).injector_for("gpu", 0));
            }
            let buf = dev.register_buffer("col", GIB, AccessMode::Uva).unwrap();
            for _ in 0..8 {
                dev.account(&scan_desc(buf, GIB)).unwrap();
            }
            (dev.total_time(), dev.total_interconnect_bytes())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn metrics_accumulate_and_reset() {
        let mut dev = GpuDevice::new(GpuSpec::gtx_980());
        let buf = dev.register_buffer("col", GIB, AccessMode::Uva).unwrap();
        dev.account(&scan_desc(buf, GIB)).unwrap();
        dev.memcpy(GIB, TransferDirection::HostToDevice);
        assert!(dev.total_time() > SimDuration::ZERO);
        assert!(dev.total_interconnect_bytes() >= GIB);
        assert_eq!(dev.kernel_log().len(), 1);
        dev.reset_metrics();
        assert_eq!(dev.total_time(), SimDuration::ZERO);
        assert_eq!(dev.kernels_launched(), 0);
        assert!(dev.kernel_log().is_empty());
    }
}
