//! Host-device interconnect model (PCIe generations and NVLink).
//!
//! The paper's Table 1 tracks interconnect bandwidth from PCIe 1.0 (4 GB/s)
//! through PCIe 3.0 (16 GB/s) to NVLink (80-200 GB/s), and its Figure 1 and
//! Figure 10 results are shaped by two interconnect properties: the sustained
//! bandwidth and the maximum transfer unit ("the MTU through the PCIe bus
//! typically does not exceed 512 bytes"), which determines how much of each
//! bus transaction is wasted by non-coalesced access patterns.

use h2tap_common::SimDuration;
use serde::{Deserialize, Serialize};

/// The kind of host-device interconnect a GPU uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InterconnectKind {
    /// PCI Express 1.0 x16 (~4 GB/s).
    PCIe1,
    /// PCI Express 2.0 x16 (~8 GB/s).
    PCIe2,
    /// PCI Express 3.0 x16 (~16 GB/s).
    PCIe3,
    /// PCI Express 4.0 x16 (~32 GB/s).
    PCIe4,
    /// NVLink (first generation, 80 GB/s per the paper's conservative bound).
    NVLink,
}

impl InterconnectKind {
    /// Peak unidirectional bandwidth in GB/s (decimal gigabytes).
    pub fn bandwidth_gbps(self) -> f64 {
        match self {
            InterconnectKind::PCIe1 => 4.0,
            InterconnectKind::PCIe2 => 8.0,
            InterconnectKind::PCIe3 => 16.0,
            InterconnectKind::PCIe4 => 32.0,
            InterconnectKind::NVLink => 80.0,
        }
    }

    /// Short human-readable label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            InterconnectKind::PCIe1 => "PCIe 1.0",
            InterconnectKind::PCIe2 => "PCIe 2.0",
            InterconnectKind::PCIe3 => "PCIe 3.0",
            InterconnectKind::PCIe4 => "PCIe 4.0",
            InterconnectKind::NVLink => "NVLink",
        }
    }
}

/// A configured interconnect: kind plus the parameters of the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interconnect {
    /// Which physical link this is.
    pub kind: InterconnectKind,
    /// Maximum transfer unit in bytes. Non-coalesced accesses waste the part
    /// of each MTU-sized transaction they do not use.
    pub mtu_bytes: u64,
    /// Fixed per-transfer setup latency (DMA programming, doorbell).
    pub setup_latency: SimDuration,
    /// Fraction of the peak bandwidth that bulk transfers actually sustain.
    pub efficiency: f64,
}

impl Interconnect {
    /// An interconnect of the given kind with the default 512-byte MTU,
    /// 10 microseconds of setup latency and 85% sustained efficiency.
    pub fn new(kind: InterconnectKind) -> Self {
        Self { kind, mtu_bytes: 512, setup_latency: SimDuration::from_micros(10), efficiency: 0.85 }
    }

    /// Sustained bandwidth in bytes per second.
    pub fn effective_bytes_per_sec(&self) -> f64 {
        self.kind.bandwidth_gbps() * 1e9 * self.efficiency
    }

    /// Time to move `bytes` as one bulk (fully coalesced) DMA transfer from
    /// pinned memory, e.g. a Unified Memory page migration.
    pub fn bulk_transfer_time(&self, bytes: u64) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        self.setup_latency + SimDuration::from_secs_f64(bytes as f64 / self.effective_bytes_per_sec())
    }

    /// Time for an explicit `cudaMemcpy` from *pageable* host memory. The
    /// driver stages pageable data through a pinned bounce buffer, which
    /// costs roughly a quarter of the sustained bandwidth — this is why the
    /// paper's Figure 1 shows UVA overtaking memcpy on Maxwell.
    pub fn pageable_transfer_time(&self, bytes: u64) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        self.setup_latency + SimDuration::from_secs_f64(bytes as f64 / (self.effective_bytes_per_sec() * 0.75))
    }

    /// Time for a kernel to stream `wire_bytes` of bus traffic (already
    /// inflated by any coalescing inefficiency) while executing, i.e. the UVA
    /// zero-copy path. There is no per-transfer setup cost because accesses
    /// are issued by the kernel itself, but each MTU-sized transaction pays a
    /// small issue overhead that models bus packet headers.
    pub fn streaming_time(&self, wire_bytes: u64) -> SimDuration {
        if wire_bytes == 0 {
            return SimDuration::ZERO;
        }
        let transactions = wire_bytes.div_ceil(self.mtu_bytes);
        // ~64 bytes of packet/protocol overhead per transaction.
        let overhead_bytes = transactions * 64;
        SimDuration::from_secs_f64((wire_bytes + overhead_bytes) as f64 / self.effective_bytes_per_sec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_ordering_matches_generations() {
        assert!(InterconnectKind::PCIe1.bandwidth_gbps() < InterconnectKind::PCIe2.bandwidth_gbps());
        assert!(InterconnectKind::PCIe2.bandwidth_gbps() < InterconnectKind::PCIe3.bandwidth_gbps());
        assert!(InterconnectKind::PCIe3.bandwidth_gbps() < InterconnectKind::NVLink.bandwidth_gbps());
    }

    #[test]
    fn bulk_transfer_scales_linearly() {
        let ic = Interconnect::new(InterconnectKind::PCIe3);
        let one = ic.bulk_transfer_time(1 << 30);
        let two = ic.bulk_transfer_time(2 << 30);
        // Twice the data should take roughly twice as long (setup amortised).
        let ratio = two.as_secs_f64() / one.as_secs_f64();
        assert!((1.8..2.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn pcie3_is_twice_pcie2_for_bulk() {
        let gen2 = Interconnect::new(InterconnectKind::PCIe2).bulk_transfer_time(1 << 31);
        let gen3 = Interconnect::new(InterconnectKind::PCIe3).bulk_transfer_time(1 << 31);
        let speedup = gen2.as_secs_f64() / gen3.as_secs_f64();
        assert!((1.8..2.2).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn zero_bytes_cost_nothing() {
        let ic = Interconnect::new(InterconnectKind::PCIe3);
        assert_eq!(ic.bulk_transfer_time(0), SimDuration::ZERO);
        assert_eq!(ic.streaming_time(0), SimDuration::ZERO);
    }

    #[test]
    fn streaming_2gb_over_pcie2_takes_seconds() {
        // Figure 1's 2 GB column over PCIe 2.0 (Fermi UVA) should land in the
        // hundreds-of-milliseconds-to-seconds range, not microseconds.
        let ic = Interconnect::new(InterconnectKind::PCIe2);
        let t = ic.streaming_time(2 << 30).as_secs_f64();
        assert!(t > 0.2 && t < 2.0, "t = {t}");
    }
}
