//! A software model of general-purpose GPUs (GPGPUs) for the Caldera H2TAP
//! engine.
//!
//! The paper's data-parallel archipelago runs analytical kernels on NVIDIA
//! GPUs (a Fermi Tesla M2090 and a Maxwell GTX 980) and relies on three
//! CUDA-era capabilities: explicit host/device copies (`memcpy`), Unified
//! Virtual Addressing (UVA, zero-copy access to host memory over PCIe), and
//! Unified Memory (UM, automatic page migration into device memory). No GPU
//! is available in this environment, so this crate reproduces the *behaviour*
//! that shapes the paper's results in software:
//!
//! * a device catalogue with the processing power, memory capacity and
//!   interconnect bandwidth of each GPU generation (Table 1),
//! * a memory manager that tracks device allocations, UVA mappings and the
//!   page residency of UM allocations,
//! * a SIMT execution model (grids, blocks, warps) with a **memory
//!   coalescing** analyser that penalises strided access patterns,
//! * an analytical cost model that converts the bytes a kernel touches, where
//!   they live, and how they are accessed into a simulated execution time.
//!
//! Kernels execute real Rust closures over real data, so every query result
//! computed "on the GPU" is exact; only the reported time is simulated.

pub mod access;
pub mod catalog;
pub mod device;
pub mod fault;
pub mod interconnect;
pub mod kernel;
pub mod memory;

pub use access::{coalescing_efficiency, AccessPattern};
pub use catalog::{table1_catalog, table1_mix, GpuArchitecture, GpuSpec};
pub use device::{GpuDevice, KernelRun, TransferDirection, DEVICE_TRANSACTION_BYTES};
pub use fault::{DeviceLossPoint, FaultDecision, FaultInjector, FaultPlan};
pub use interconnect::{Interconnect, InterconnectKind};
pub use kernel::{BufferRead, KernelDesc, KernelMetrics};
pub use memory::{AccessMode, BufferId, MemoryManager, Residency};
