//! Memory access patterns and the coalescing model.
//!
//! GPUs coalesce the loads and stores issued by the threads of a warp into as
//! few memory transactions as possible, but only when consecutive threads
//! touch consecutive addresses. The paper leans on this twice: PAX/DSM enable
//! coalesced accesses while NSM does not (Figure 10), and the penalty for
//! non-coalesced access is much larger when every wasted byte has to cross
//! the PCIe bus than when data is resident in device memory (Figure 11).

use serde::{Deserialize, Serialize};

/// How a kernel's threads walk over a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Consecutive threads read consecutive elements (DSM columns, PAX
    /// minipages): fully coalesced.
    Sequential,
    /// Consecutive threads read `elem_bytes`-wide values that are
    /// `stride_bytes` apart (NSM records): each transaction carries mostly
    /// unused bytes.
    Strided {
        /// Distance between consecutive useful values.
        stride_bytes: u32,
        /// Width of each useful value.
        elem_bytes: u32,
    },
    /// Data-dependent gather (hash probes, index lookups): modelled as
    /// touching one full transaction per element.
    Random {
        /// Width of each useful value.
        elem_bytes: u32,
    },
}

impl AccessPattern {
    /// The fraction of each `transaction_bytes`-sized memory transaction that
    /// carries useful data, in `(0, 1]`.
    pub fn efficiency(self, transaction_bytes: u64) -> f64 {
        coalescing_efficiency(self, transaction_bytes)
    }

    /// How many bytes actually move on the wire / through the memory system
    /// to deliver `useful_bytes` of payload with this pattern.
    pub fn wire_bytes(self, useful_bytes: u64, transaction_bytes: u64) -> u64 {
        let eff = self.efficiency(transaction_bytes);
        if eff >= 1.0 {
            useful_bytes
        } else {
            (useful_bytes as f64 / eff).ceil() as u64
        }
    }
}

/// Fraction of each memory transaction that is useful payload.
///
/// * `Sequential` is perfectly coalesced: 1.0.
/// * `Strided` wastes everything in the transaction except the useful
///   elements that fall inside it. When the stride exceeds the transaction
///   size, each element costs a whole transaction.
/// * `Random` always costs a whole transaction per element.
pub fn coalescing_efficiency(pattern: AccessPattern, transaction_bytes: u64) -> f64 {
    let txn = transaction_bytes.max(1) as f64;
    match pattern {
        AccessPattern::Sequential => 1.0,
        AccessPattern::Strided { stride_bytes, elem_bytes } => {
            let stride = f64::from(stride_bytes.max(1));
            let elem = f64::from(elem_bytes.max(1)).min(stride);
            if stride <= elem {
                return 1.0;
            }
            if stride >= txn {
                // One transaction per element.
                (elem / txn).min(1.0)
            } else {
                // Several strided elements fit in one transaction.
                let elems_per_txn = (txn / stride).floor().max(1.0);
                (elems_per_txn * elem / txn).min(1.0)
            }
        }
        AccessPattern::Random { elem_bytes } => (f64::from(elem_bytes.max(1)) / txn).min(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_is_fully_coalesced() {
        assert_eq!(coalescing_efficiency(AccessPattern::Sequential, 128), 1.0);
        assert_eq!(AccessPattern::Sequential.wire_bytes(1000, 128), 1000);
    }

    #[test]
    fn nsm_like_stride_wastes_bandwidth() {
        // 4-byte integers spaced 64 bytes apart (a 16-attribute NSM record):
        // a 512-byte PCIe transaction carries 8 useful values = 32/512.
        let p = AccessPattern::Strided { stride_bytes: 64, elem_bytes: 4 };
        let eff = coalescing_efficiency(p, 512);
        assert!((eff - 32.0 / 512.0).abs() < 1e-9, "eff {eff}");
        // When the stride fits inside the transaction, efficiency degrades to
        // elem/stride regardless of the transaction size.
        let dev_eff = coalescing_efficiency(p, 128);
        assert!((dev_eff - eff).abs() < 1e-9);
        // Once the stride exceeds the smaller transaction, the smaller
        // transaction wastes less per element than the larger one.
        let wide = AccessPattern::Strided { stride_bytes: 256, elem_bytes: 4 };
        assert!(coalescing_efficiency(wide, 128) > coalescing_efficiency(wide, 512));
    }

    #[test]
    fn stride_equal_to_elem_is_sequential() {
        let p = AccessPattern::Strided { stride_bytes: 8, elem_bytes: 8 };
        assert_eq!(coalescing_efficiency(p, 128), 1.0);
    }

    #[test]
    fn huge_stride_costs_one_transaction_per_element() {
        let p = AccessPattern::Strided { stride_bytes: 4096, elem_bytes: 4 };
        let eff = coalescing_efficiency(p, 512);
        assert!((eff - 4.0 / 512.0).abs() < 1e-9);
    }

    #[test]
    fn random_access_is_one_transaction_per_element() {
        let p = AccessPattern::Random { elem_bytes: 8 };
        assert!((coalescing_efficiency(p, 128) - 8.0 / 128.0).abs() < 1e-9);
    }

    #[test]
    fn wire_bytes_inflate_with_inefficiency() {
        let p = AccessPattern::Strided { stride_bytes: 64, elem_bytes: 4 };
        let useful = 4 * 1024 * 1024u64;
        let wire = p.wire_bytes(useful, 512);
        assert!(wire > useful * 10, "wire {wire} useful {useful}");
    }

    #[test]
    fn efficiency_never_exceeds_one_or_hits_zero() {
        let patterns = [
            AccessPattern::Sequential,
            AccessPattern::Strided { stride_bytes: 3, elem_bytes: 7 },
            AccessPattern::Strided { stride_bytes: 0, elem_bytes: 0 },
            AccessPattern::Random { elem_bytes: 0 },
        ];
        for p in patterns {
            for txn in [32u64, 128, 512, 0] {
                let e = coalescing_efficiency(p, txn);
                assert!(e > 0.0 && e <= 1.0, "pattern {p:?} txn {txn} eff {e}");
            }
        }
    }
}
