//! Kernel descriptors and per-kernel metrics.
//!
//! A [`KernelDesc`] is the simulator-side description of one CUDA kernel
//! launch: how many elements the grid covers, how much arithmetic each thread
//! does, and which buffers it reads/writes with which access pattern. The
//! device turns this into a simulated execution time; the *work itself* (the
//! actual filter/aggregate over real data) is done by the closure passed to
//! [`crate::GpuDevice::launch`].

use crate::access::AccessPattern;
use crate::memory::BufferId;
use h2tap_common::SimDuration;
use serde::{Deserialize, Serialize};

/// One input buffer read performed by a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BufferRead {
    /// Which buffer is read.
    pub buffer: BufferId,
    /// Useful payload bytes the kernel consumes from this buffer.
    pub useful_bytes: u64,
    /// Access pattern of the read, which determines coalescing efficiency.
    pub pattern: AccessPattern,
}

/// Description of one kernel launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelDesc {
    /// Kernel name for metrics and experiment output.
    pub name: String,
    /// Number of logical elements the grid processes (one thread per
    /// element, grouped into warps by the executor).
    pub elements: u64,
    /// Floating-point (or integer ALU) operations per element.
    pub flops_per_element: f64,
    /// Input reads.
    pub reads: Vec<BufferRead>,
    /// Bytes written to the output buffer (assumed coalesced; result columns
    /// and aggregates are written sequentially).
    pub write_bytes: u64,
}

impl KernelDesc {
    /// Creates a kernel description with no reads/writes; use the builder
    /// methods to attach them.
    pub fn new(name: impl Into<String>, elements: u64) -> Self {
        Self { name: name.into(), elements, flops_per_element: 1.0, reads: Vec::new(), write_bytes: 0 }
    }

    /// Sets the per-element arithmetic intensity.
    #[must_use]
    pub fn flops_per_element(mut self, flops: f64) -> Self {
        self.flops_per_element = flops;
        self
    }

    /// Adds an input read.
    #[must_use]
    pub fn read(mut self, buffer: BufferId, useful_bytes: u64, pattern: AccessPattern) -> Self {
        self.reads.push(BufferRead { buffer, useful_bytes, pattern });
        self
    }

    /// Sets the output size.
    #[must_use]
    pub fn write(mut self, bytes: u64) -> Self {
        self.write_bytes = bytes;
        self
    }

    /// Total useful input bytes across all reads.
    pub fn total_useful_bytes(&self) -> u64 {
        self.reads.iter().map(|r| r.useful_bytes).sum()
    }
}

/// What one kernel launch cost, as accounted by the device model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct KernelMetrics {
    /// Kernel name.
    pub name: String,
    /// Simulated wall-clock time of the launch (including transfers that the
    /// launch itself triggered, e.g. UM migrations).
    pub time: SimDuration,
    /// Bytes moved across the host-device interconnect by this launch.
    pub interconnect_bytes: u64,
    /// Bytes read from device memory by this launch.
    pub device_mem_bytes: u64,
    /// Time spent on arithmetic (the compute-bound component).
    pub compute_time: SimDuration,
    /// Time spent moving data (the bandwidth-bound component).
    pub memory_time: SimDuration,
    /// Fixed launch overhead.
    pub launch_overhead: SimDuration,
}

impl KernelMetrics {
    /// Whether this launch was limited by data movement rather than
    /// arithmetic — true for every scan-like database kernel in the paper.
    pub fn is_memory_bound(&self) -> bool {
        self.memory_time >= self.compute_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_reads() {
        let d = KernelDesc::new("scan", 1000)
            .flops_per_element(2.0)
            .read(BufferId(0), 4000, AccessPattern::Sequential)
            .read(BufferId(1), 8000, AccessPattern::Sequential)
            .write(100);
        assert_eq!(d.reads.len(), 2);
        assert_eq!(d.total_useful_bytes(), 12_000);
        assert_eq!(d.write_bytes, 100);
        assert_eq!(d.flops_per_element, 2.0);
    }

    #[test]
    fn memory_bound_classification() {
        let m = KernelMetrics {
            compute_time: SimDuration::from_micros(10),
            memory_time: SimDuration::from_micros(50),
            ..KernelMetrics::default()
        };
        assert!(m.is_memory_bound());
        let c = KernelMetrics {
            compute_time: SimDuration::from_micros(100),
            memory_time: SimDuration::from_micros(50),
            ..KernelMetrics::default()
        };
        assert!(!c.is_memory_bound());
    }
}
