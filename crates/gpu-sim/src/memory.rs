//! Device memory management: allocations, residency and access modes.
//!
//! The memory manager mirrors the three ways the paper's microbenchmarks make
//! host data visible to GPU kernels:
//!
//! * **Memcpy** — the buffer lives in pageable host memory and must be copied
//!   into a device allocation before a kernel can touch it.
//! * **UVA** — Unified Virtual Addressing: the buffer stays in host memory
//!   and kernels read it over the interconnect, zero-copy.
//! * **UM** — Unified Memory: the CUDA runtime migrates pages on demand; the
//!   first kernel that touches a page pays the migration, later kernels read
//!   it at device-memory bandwidth.

use crate::catalog::GpuSpec;
use h2tap_common::{H2Error, Result};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Handle to a buffer registered with a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BufferId(pub u64);

/// How a host allocation is exposed to the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessMode {
    /// Explicit host/device copies over the interconnect.
    Memcpy,
    /// Zero-copy access to host memory (Unified Virtual Addressing).
    Uva,
    /// Unified Memory with on-demand page migration.
    UnifiedMemory,
}

/// Where the bytes of a buffer currently live.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Residency {
    /// Entirely in device memory (explicit allocation or fully migrated UM).
    Device,
    /// In host memory, accessed over the interconnect (UVA).
    HostUva,
    /// Unified Memory: pages migrate on first touch. Tracks which pages are
    /// currently resident on the device.
    HostUm {
        /// Number of device-resident pages.
        resident_pages: u64,
        /// Total number of pages in the allocation.
        total_pages: u64,
    },
}

/// One registered buffer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BufferInfo {
    /// Size of the allocation in bytes.
    pub bytes: u64,
    /// Current residency.
    pub residency: Residency,
    /// Debug label ("lineitem.l_extendedprice", ...).
    pub label: String,
}

/// Tracks device memory usage and buffer residency for one GPU.
#[derive(Debug, Clone)]
pub struct MemoryManager {
    capacity_bytes: u64,
    used_bytes: u64,
    page_bytes: u64,
    um_oversubscription: bool,
    next_id: u64,
    buffers: BTreeMap<BufferId, BufferInfo>,
}

/// Unified Memory migration granularity: 64 KiB, the fault granularity the
/// CUDA driver uses for pre-Pascal prefetching and a realistic page size for
/// the Pascal fault path.
pub const UM_PAGE_BYTES: u64 = 64 * 1024;

impl MemoryManager {
    /// Creates a manager for a device with the given spec.
    pub fn new(spec: &GpuSpec) -> Self {
        Self {
            capacity_bytes: spec.mem_capacity_bytes(),
            used_bytes: 0,
            page_bytes: UM_PAGE_BYTES,
            um_oversubscription: spec.architecture.supports_um_oversubscription(),
            next_id: 0,
            buffers: BTreeMap::new(),
        }
    }

    /// Device memory capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Device memory currently allocated (explicit allocations plus resident
    /// UM pages).
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Device memory still available for allocations — the headroom the
    /// placement heuristic checks a plan's hash-table footprint against.
    pub fn free_bytes(&self) -> u64 {
        self.capacity_bytes.saturating_sub(self.used_bytes)
    }

    /// UM page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }

    fn fresh_id(&mut self) -> BufferId {
        let id = BufferId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Registers a buffer according to `mode`. `Memcpy` and `UnifiedMemory`
    /// without oversubscription require the allocation to fit in device
    /// memory; `Uva` buffers never consume device memory.
    pub fn register(&mut self, label: impl Into<String>, bytes: u64, mode: AccessMode) -> Result<BufferId> {
        let label = label.into();
        let residency = match mode {
            AccessMode::Memcpy => {
                self.reserve(bytes)?;
                Residency::Device
            }
            AccessMode::Uva => Residency::HostUva,
            AccessMode::UnifiedMemory => {
                if !self.um_oversubscription && bytes > self.capacity_bytes {
                    return Err(H2Error::GpuOutOfMemory {
                        requested_bytes: bytes,
                        capacity_bytes: self.capacity_bytes,
                    });
                }
                Residency::HostUm { resident_pages: 0, total_pages: bytes.div_ceil(self.page_bytes).max(1) }
            }
        };
        let id = self.fresh_id();
        self.buffers.insert(id, BufferInfo { bytes, residency, label });
        Ok(id)
    }

    /// Registers a buffer that is *already* resident in device memory (the
    /// Figure 11 experiment stores the whole dataset on the GPU).
    pub fn register_device_resident(&mut self, label: impl Into<String>, bytes: u64) -> Result<BufferId> {
        self.reserve(bytes)?;
        let id = self.fresh_id();
        self.buffers.insert(id, BufferInfo { bytes, residency: Residency::Device, label: label.into() });
        Ok(id)
    }

    fn reserve(&mut self, bytes: u64) -> Result<()> {
        if self.used_bytes + bytes > self.capacity_bytes {
            return Err(H2Error::GpuOutOfMemory {
                requested_bytes: bytes,
                capacity_bytes: self.capacity_bytes - self.used_bytes,
            });
        }
        self.used_bytes += bytes;
        Ok(())
    }

    /// Returns buffer metadata.
    pub fn info(&self, id: BufferId) -> Result<&BufferInfo> {
        self.buffers.get(&id).ok_or_else(|| H2Error::InvalidKernel(format!("unknown buffer {id:?}")))
    }

    /// Frees a buffer, releasing any device memory it held.
    pub fn free(&mut self, id: BufferId) -> Result<()> {
        let info = self.buffers.remove(&id).ok_or_else(|| H2Error::InvalidKernel(format!("unknown buffer {id:?}")))?;
        match info.residency {
            Residency::Device => self.used_bytes = self.used_bytes.saturating_sub(info.bytes),
            Residency::HostUm { resident_pages, .. } => {
                self.used_bytes = self.used_bytes.saturating_sub(resident_pages * self.page_bytes);
            }
            Residency::HostUva => {}
        }
        Ok(())
    }

    /// Records that a kernel touched `touched_bytes` of a UM buffer and
    /// returns how many bytes had to be migrated from the host (i.e. the
    /// pages that were not yet resident). For non-UM buffers this is a no-op
    /// returning 0.
    pub fn touch_um(&mut self, id: BufferId, touched_bytes: u64) -> Result<u64> {
        let page_bytes = self.page_bytes;
        let capacity = self.capacity_bytes;
        let mut newly_used = 0u64;
        let migrated = {
            let info =
                self.buffers.get_mut(&id).ok_or_else(|| H2Error::InvalidKernel(format!("unknown buffer {id:?}")))?;
            match &mut info.residency {
                Residency::HostUm { resident_pages, total_pages } => {
                    let touched_pages = touched_bytes.div_ceil(page_bytes).min(*total_pages);
                    let new_pages = touched_pages.saturating_sub(*resident_pages);
                    // Oversubscribed allocations evict rather than grow past
                    // capacity; the eviction itself is charged by the device
                    // model as additional traffic, we just cap residency here.
                    let max_resident_pages = capacity / page_bytes;
                    *resident_pages = (*resident_pages + new_pages).min(*total_pages).min(max_resident_pages);
                    newly_used = new_pages.min(max_resident_pages.saturating_sub(0)) * page_bytes;
                    new_pages * page_bytes
                }
                _ => 0,
            }
        };
        self.used_bytes = (self.used_bytes + newly_used).min(self.capacity_bytes + migrated);
        Ok(migrated)
    }

    /// Drops all resident UM pages of a buffer back to the host (used to
    /// model a cold start between experiment repetitions).
    pub fn evict_um(&mut self, id: BufferId) -> Result<()> {
        let page_bytes = self.page_bytes;
        let info = self.buffers.get_mut(&id).ok_or_else(|| H2Error::InvalidKernel(format!("unknown buffer {id:?}")))?;
        if let Residency::HostUm { resident_pages, .. } = &mut info.residency {
            self.used_bytes = self.used_bytes.saturating_sub(*resident_pages * page_bytes);
            *resident_pages = 0;
        }
        Ok(())
    }

    /// Number of registered buffers.
    pub fn buffer_count(&self) -> usize {
        self.buffers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::GpuSpec;

    fn maxwell() -> MemoryManager {
        MemoryManager::new(&GpuSpec::gtx_980())
    }

    #[test]
    fn device_allocation_respects_capacity() {
        let mut m = maxwell();
        let cap = m.capacity_bytes();
        assert!(m.register("big", cap + 1, AccessMode::Memcpy).is_err());
        let id = m.register("fits", cap / 2, AccessMode::Memcpy).unwrap();
        assert_eq!(m.used_bytes(), cap / 2);
        m.free(id).unwrap();
        assert_eq!(m.used_bytes(), 0);
    }

    #[test]
    fn uva_buffers_use_no_device_memory() {
        let mut m = maxwell();
        let _ = m.register("host", 16 << 30, AccessMode::Uva).unwrap();
        assert_eq!(m.used_bytes(), 0);
    }

    #[test]
    fn um_on_maxwell_cannot_oversubscribe() {
        let mut m = maxwell();
        let cap = m.capacity_bytes();
        assert!(m.register("um-too-big", cap * 2, AccessMode::UnifiedMemory).is_err());
        assert!(m.register("um-ok", cap / 2, AccessMode::UnifiedMemory).is_ok());
    }

    #[test]
    fn um_on_pascal_can_oversubscribe() {
        let mut m = MemoryManager::new(&GpuSpec::gtx_1080_ti());
        let cap = m.capacity_bytes();
        assert!(m.register("um-big", cap * 2, AccessMode::UnifiedMemory).is_ok());
    }

    #[test]
    fn um_touch_migrates_once() {
        let mut m = maxwell();
        let bytes = 128 * UM_PAGE_BYTES;
        let id = m.register("um", bytes, AccessMode::UnifiedMemory).unwrap();
        let first = m.touch_um(id, bytes).unwrap();
        assert_eq!(first, bytes);
        let second = m.touch_um(id, bytes).unwrap();
        assert_eq!(second, 0, "already-resident pages must not migrate again");
        m.evict_um(id).unwrap();
        let third = m.touch_um(id, bytes).unwrap();
        assert_eq!(third, bytes);
    }

    #[test]
    fn touch_um_is_noop_for_other_modes() {
        let mut m = maxwell();
        let id = m.register("uva", 1 << 20, AccessMode::Uva).unwrap();
        assert_eq!(m.touch_um(id, 1 << 20).unwrap(), 0);
    }

    #[test]
    fn free_unknown_buffer_errors() {
        let mut m = maxwell();
        assert!(m.free(BufferId(99)).is_err());
        assert!(m.info(BufferId(99)).is_err());
    }

    #[test]
    fn device_resident_registration_tracks_usage() {
        let mut m = maxwell();
        let id = m.register_device_resident("gpu-table", 1 << 30).unwrap();
        assert_eq!(m.used_bytes(), 1 << 30);
        assert_eq!(m.info(id).unwrap().residency, Residency::Device);
        assert_eq!(m.buffer_count(), 1);
    }
}
