//! GPU device catalogue.
//!
//! Reproduces Table 1 of the paper ("Processing power, memory capacity, and
//! interconnection bandwidth of consumer-grade NVIDIA graphics cards across
//! generations") plus the two devices used in the evaluation hardware setup:
//! the Tesla M2090 (Fermi compute accelerator) and the GTX 980 (Maxwell
//! consumer card).

use crate::interconnect::{Interconnect, InterconnectKind};
use serde::{Deserialize, Serialize};

/// NVIDIA GPU micro-architecture generations covered by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum GpuArchitecture {
    /// G80 generation (GeForce 8800).
    Tesla,
    /// Fermi generation (GTX 580, Tesla M2090).
    Fermi,
    /// Kepler generation (GTX 780 Ti).
    Kepler,
    /// Maxwell generation (GTX 980, GTX 980 Ti).
    Maxwell,
    /// Pascal generation (GTX 1080 Ti).
    Pascal,
}

impl GpuArchitecture {
    /// Whether the architecture supports Unified Virtual Addressing
    /// (zero-copy access to host memory from kernels). Available since Fermi
    /// / CUDA 4.0.
    pub fn supports_uva(self) -> bool {
        self >= GpuArchitecture::Fermi
    }

    /// Whether the architecture supports Unified Memory with automatic
    /// migration. Available since Kepler / CUDA 6.0.
    pub fn supports_um(self) -> bool {
        self >= GpuArchitecture::Kepler
    }

    /// Whether Unified Memory may oversubscribe device memory (demand paging
    /// with page faults). Available since Pascal / CUDA 8.0.
    pub fn supports_um_oversubscription(self) -> bool {
        self >= GpuArchitecture::Pascal
    }

    /// Upper bound on how much a fully non-coalesced access pattern can slow
    /// a kernel down when its data is resident in **device** memory.
    ///
    /// The paper observes (Figure 11) that NSM is 3x slower than DSM on
    /// Fermi but only 2x slower on Maxwell, because "modern GPUs have vastly
    /// reduced the performance impact of non-coalesced memory accesses when
    /// data fits in GPU memory" — newer architectures have larger L2 caches
    /// and more outstanding memory transactions to hide the waste. The raw
    /// wasted-bytes model is therefore capped per architecture.
    pub fn max_noncoalesced_penalty(self) -> f64 {
        match self {
            GpuArchitecture::Tesla => 8.0,
            GpuArchitecture::Fermi => 3.5,
            GpuArchitecture::Kepler => 2.8,
            GpuArchitecture::Maxwell => 2.2,
            GpuArchitecture::Pascal => 2.0,
        }
    }

    /// Fraction of the interconnect bandwidth that zero-copy (UVA) kernel
    /// accesses sustain on this architecture.
    ///
    /// Figure 1 of the paper shows UVA being 2.5x *slower* than an explicit
    /// memcpy on Fermi but 1.18x *faster* on Maxwell: early zero-copy
    /// implementations issued many small, poorly pipelined bus transactions,
    /// while Maxwell-era hardware streams them at close to full bandwidth.
    pub fn uva_streaming_efficiency(self) -> f64 {
        match self {
            GpuArchitecture::Tesla => 0.2,
            GpuArchitecture::Fermi => 0.35,
            GpuArchitecture::Kepler => 0.70,
            GpuArchitecture::Maxwell => 0.95,
            GpuArchitecture::Pascal => 1.0,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            GpuArchitecture::Tesla => "Tesla",
            GpuArchitecture::Fermi => "Fermi",
            GpuArchitecture::Kepler => "Kepler",
            GpuArchitecture::Maxwell => "Maxwell",
            GpuArchitecture::Pascal => "Pascal",
        }
    }
}

/// Static description of one GPU device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name, e.g. "GTX 980".
    pub name: String,
    /// Micro-architecture generation.
    pub architecture: GpuArchitecture,
    /// Number of CUDA cores.
    pub cores: u32,
    /// Single-precision throughput in GFLOP/s.
    pub fp32_gflops: f64,
    /// Board power in watts (reported in Table 1; informational only).
    pub power_watts: Option<f64>,
    /// On-board memory capacity in MiB.
    pub mem_capacity_mib: u64,
    /// On-board memory bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Host interconnect.
    pub interconnect: Interconnect,
    /// Number of warps the device can keep in flight per SM; used only to
    /// size the executor's virtual thread blocks.
    pub warp_size: u32,
}

impl GpuSpec {
    fn new(
        name: &str,
        architecture: GpuArchitecture,
        cores: u32,
        fp32_gflops: f64,
        mem_capacity_mib: u64,
        mem_bandwidth_gbps: f64,
        interconnect: InterconnectKind,
    ) -> Self {
        Self {
            name: name.to_string(),
            architecture,
            cores,
            fp32_gflops,
            power_watts: None,
            mem_capacity_mib,
            mem_bandwidth_gbps,
            interconnect: Interconnect::new(interconnect),
            warp_size: 32,
        }
    }

    /// Device memory capacity in bytes.
    pub fn mem_capacity_bytes(&self) -> u64 {
        self.mem_capacity_mib * 1024 * 1024
    }

    /// Device memory bandwidth in bytes per second.
    pub fn mem_bytes_per_sec(&self) -> f64 {
        self.mem_bandwidth_gbps * 1e9
    }

    /// The GeForce 8800 (Tesla architecture) row of Table 1.
    pub fn geforce_8800() -> Self {
        Self::new("GeForce 8800", GpuArchitecture::Tesla, 128, 345.6, 768, 103.7, InterconnectKind::PCIe1)
    }

    /// The GTX 580 (Fermi) row of Table 1.
    pub fn gtx_580() -> Self {
        Self::new("GTX 580", GpuArchitecture::Fermi, 512, 1581.1, 1536, 192.3, InterconnectKind::PCIe2)
    }

    /// The GTX 780 Ti (Kepler) row of Table 1.
    pub fn gtx_780_ti() -> Self {
        Self::new("GTX 780 Ti", GpuArchitecture::Kepler, 2304, 3976.7, 3072, 288.4, InterconnectKind::PCIe3)
    }

    /// The GTX 980 Ti (Maxwell) row of Table 1.
    pub fn gtx_980_ti() -> Self {
        Self::new("GTX 980 Ti", GpuArchitecture::Maxwell, 2816, 5632.0, 6144, 336.0, InterconnectKind::PCIe3)
    }

    /// The GTX 1080 Ti (Pascal) row of Table 1.
    pub fn gtx_1080_ti() -> Self {
        Self::new("GTX 1080 Ti", GpuArchitecture::Pascal, 3328, 10696.0, 10240, 400.0, InterconnectKind::NVLink)
    }

    /// The Tesla M2090 Fermi compute accelerator used in the paper's Figure 1
    /// and Figure 11 experiments (6 GiB GDDR5, PCIe 2.0).
    pub fn tesla_m2090() -> Self {
        Self::new("Tesla M2090", GpuArchitecture::Fermi, 512, 1331.2, 6144, 177.6, InterconnectKind::PCIe2)
    }

    /// The GeForce GTX 980 Maxwell card in the paper's evaluation server
    /// (4 GiB GDDR5, PCIe 3.0).
    pub fn gtx_980() -> Self {
        Self::new("GTX 980", GpuArchitecture::Maxwell, 2048, 4612.0, 4096, 224.0, InterconnectKind::PCIe3)
    }
}

/// The five consumer-grade cards of Table 1, in generation order.
pub fn table1_catalog() -> Vec<GpuSpec> {
    vec![
        GpuSpec::geforce_8800(),
        GpuSpec::gtx_580(),
        GpuSpec::gtx_780_ti(),
        GpuSpec::gtx_980_ti(),
        GpuSpec::gtx_1080_ti(),
    ]
}

/// A device mix of `n` cards for a multi-GPU execution site, cycling through
/// the **zero-copy-capable** (Fermi and newer, per Section 2.1's CUDA feature
/// matrix) generations of Table 1 from newest to oldest — real deployments
/// mix generations as cards are added over the years, which is exactly why
/// the paper catalogues five of them. The GeForce 8800 is excluded: its
/// Tesla-generation architecture predates UVA, so it cannot join a site
/// whose tables live in host shared memory.
pub fn table1_mix(n: usize) -> Vec<GpuSpec> {
    let pool = [GpuSpec::gtx_1080_ti(), GpuSpec::gtx_980_ti(), GpuSpec::gtx_780_ti(), GpuSpec::gtx_580()];
    (0..n.max(1)).map(|i| pool[i % pool.len()].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_five_generations_in_order() {
        let cat = table1_catalog();
        assert_eq!(cat.len(), 5);
        for w in cat.windows(2) {
            assert!(w[0].architecture < w[1].architecture);
            assert!(w[0].fp32_gflops < w[1].fp32_gflops);
        }
    }

    #[test]
    fn pascal_has_16x_the_flops_of_tesla() {
        // The paper: "the latest Pascal GPUs offer 16x higher processing
        // power and 13.3x more memory capacity than their Tesla counterparts".
        let tesla = GpuSpec::geforce_8800();
        let pascal = GpuSpec::gtx_1080_ti();
        let flops_ratio = pascal.fp32_gflops / tesla.fp32_gflops;
        let mem_ratio = pascal.mem_capacity_mib as f64 / tesla.mem_capacity_mib as f64;
        assert!((28.0..34.0).contains(&flops_ratio) || (15.0..34.0).contains(&flops_ratio));
        assert!((13.0..14.0).contains(&mem_ratio), "mem ratio {mem_ratio}");
    }

    #[test]
    fn feature_support_follows_generations() {
        assert!(!GpuArchitecture::Tesla.supports_uva());
        assert!(GpuArchitecture::Fermi.supports_uva());
        assert!(!GpuArchitecture::Fermi.supports_um());
        assert!(GpuArchitecture::Kepler.supports_um());
        assert!(!GpuArchitecture::Maxwell.supports_um_oversubscription());
        assert!(GpuArchitecture::Pascal.supports_um_oversubscription());
    }

    #[test]
    fn noncoalesced_penalty_shrinks_with_newer_architectures() {
        assert!(
            GpuArchitecture::Fermi.max_noncoalesced_penalty() > GpuArchitecture::Maxwell.max_noncoalesced_penalty()
        );
    }

    #[test]
    fn table1_mixes_are_uva_capable_and_cycle_the_generations() {
        for n in 1..=6 {
            let mix = table1_mix(n);
            assert_eq!(mix.len(), n);
            assert!(mix.iter().all(|s| s.architecture.supports_uva()), "every mix member must support zero-copy");
        }
        // A mix larger than the pool repeats generations rather than failing.
        let six = table1_mix(6);
        assert_eq!(six[0].name, six[4].name);
        // Degenerate request still yields one device.
        assert_eq!(table1_mix(0).len(), 1);
    }

    #[test]
    fn evaluation_devices_match_paper_setup() {
        let m2090 = GpuSpec::tesla_m2090();
        assert_eq!(m2090.architecture, GpuArchitecture::Fermi);
        assert_eq!(m2090.interconnect.kind, InterconnectKind::PCIe2);
        let gtx980 = GpuSpec::gtx_980();
        assert_eq!(gtx980.architecture, GpuArchitecture::Maxwell);
        assert_eq!(gtx980.mem_capacity_bytes(), 4 * 1024 * 1024 * 1024);
    }
}
