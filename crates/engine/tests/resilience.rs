//! Chaos stress: concurrent OLAP clients over a device fleet that
//! misbehaves on schedule.
//!
//! Eight client threads hammer the scan path while the seeded fault plan
//! injects a storm of transient kernel faults *and* permanently kills the
//! GPU mid-stream. The resilience ladder must absorb every fault — retry
//! transients in place, trip the circuit breaker on the device loss, and
//! re-route to the CPU site — so that not a single client ever sees an
//! error and every answer stays bit-identical to a fault-free serial
//! oracle.

use caldera::{Caldera, CalderaConfig, DeviceLossPoint, FaultPlan, OlapTarget, SiteHealthState, SnapshotPolicy};
use h2tap_common::{AggExpr, AttrType, Predicate, ScanAggQuery, Schema, TableId, Value};
use h2tap_olap::DataPlacement;
use h2tap_storage::Layout;
use std::sync::{Arc, Barrier};
use std::time::Duration;

const CLIENTS: usize = 8;
const QUERIES_PER_CLIENT: u32 = 16;

fn build_engine(fault_plan: Option<FaultPlan>) -> (Caldera, TableId) {
    let mut config = CalderaConfig::with_workers(2);
    config.olap_cpu_cores = 4;
    config.olap_device.placement = DataPlacement::DeviceResident;
    config.snapshot_policy = SnapshotPolicy::Manual;
    config.olap_admission_in_flight = Some(4);
    config.olap_retry_backoff = Duration::ZERO;
    config.fault_plan = fault_plan;
    let mut builder = Caldera::builder(config);
    let fact = builder.create_table("fact", Schema::homogeneous("c", 2, AttrType::Int64), Layout::Dsm).unwrap();
    for k in 0..60_000i64 {
        builder.load(fact, k, &[Value::Int64(k), Value::Int64(1)]).unwrap();
    }
    (builder.start().unwrap(), fact)
}

fn chaos_plan() -> FaultPlan {
    let mut plan = FaultPlan::transient_storm(0xC1DA);
    // Kill the GPU for good partway through the run: early enough that most
    // of the workload runs against a dead device, late enough that the
    // device answers real queries first.
    plan.device_loss_at = Some(DeviceLossPoint { site: "gpu".into(), device: 0, launch: 24 });
    plan
}

#[test]
fn concurrent_clients_survive_a_device_loss_with_exact_answers() {
    // Fault-free serial oracle: the law for every chaotic answer below.
    let (clean, fact) = build_engine(None);
    let query = ScanAggQuery {
        predicates: vec![Predicate::between(0, 0.0, 45_000.0)],
        aggregate: AggExpr::SumColumns(vec![1]),
    };
    let oracle = clean.run_olap(fact, &query).unwrap().value.to_bits();
    clean.shutdown();

    let (caldera, fact) = build_engine(Some(chaos_plan()));
    let caldera = Arc::new(caldera);
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let clients: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let caldera = Arc::clone(&caldera);
            let barrier = Arc::clone(&barrier);
            let query = query.clone();
            std::thread::spawn(move || {
                barrier.wait();
                for _ in 0..QUERIES_PER_CLIENT {
                    // `unwrap` IS the assertion: the ladder must leave no
                    // client-visible error, faults or not.
                    let out = caldera.run_olap(fact, &query).unwrap();
                    assert_eq!(out.value.to_bits(), oracle, "a fault path changed an answer");
                }
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }

    let Ok(caldera) = Arc::try_unwrap(caldera) else { panic!("all clients joined") };
    let stats = caldera.shutdown();
    assert_eq!(stats.olap_queries, (CLIENTS as u64) * u64::from(QUERIES_PER_CLIENT));
    assert_eq!(stats.olap_sites.iter().map(|s| s.queries).sum::<u64>(), stats.olap_queries, "no query went missing");
    let gpu = stats.olap_sites.iter().find(|s| s.target == OlapTarget::Gpu).unwrap();
    assert!(gpu.health.persistent_failures >= 1, "the scheduled loss must have fired");
    assert!(gpu.health.quarantines >= 1, "the dead device must have tripped its breaker");
    assert_ne!(gpu.health.state, SiteHealthState::Closed, "a still-dead device must not end up re-admitted");
    assert!(stats.resilience.fallbacks >= 1, "queries must have re-routed off the dead device");
    assert!(stats.olap_queries_on(OlapTarget::Cpu) >= 1, "the CPU site must have absorbed re-routed queries");
    // The storm fired and was absorbed: faults were observed, some retried
    // in place, and no permit leaked on any error path.
    assert!(stats.resilience.faults >= 1);
    for site in &stats.olap_sites {
        assert_eq!(site.admission.in_flight, 0);
    }
}
