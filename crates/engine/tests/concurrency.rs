//! Concurrency stress: many OLAP clients against a concurrent writer.
//!
//! Eight client threads hammer the scan and plan paths while a writer
//! thread mutates a *separate* table and forces snapshot refreshes. The
//! refreshes change the snapshot epoch under the clients (draining them at
//! the gate's write lock each time) without changing the queried tables'
//! content — so every concurrent answer must stay bit-identical to a serial
//! oracle taken up front, no matter how the races interleave.
//!
//! The plan-data cache runs with a zero byte budget: nothing is retained,
//! so every query re-derives its inputs and concurrent same-key queries can
//! only avoid duplicate work by attaching to the in-flight materialisation.
//! A positive shared-scan attach counter is therefore proof the shared-scan
//! path ran, not a cache artefact.

use caldera::{Caldera, CalderaConfig, OlapPlan, SnapshotPolicy};
use h2tap_common::{AggExpr, AttrType, JoinSpec, PlanColumn, Predicate, ScanAggQuery, Schema, TableId, Value};
use h2tap_storage::Layout;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

const CLIENTS: usize = 8;
const QUERIES_PER_CLIENT: u32 = 24;

fn build_engine() -> (Caldera, TableId, TableId, TableId) {
    let mut config = CalderaConfig::with_workers(2);
    config.olap_cpu_cores = 4;
    // The writer thread drives freshness explicitly.
    config.snapshot_policy = SnapshotPolicy::Manual;
    // Zero retention: shared-scan attaches are the only dedup mechanism.
    config.olap_plan_cache_budget_bytes = Some(0);
    config.olap_admission_in_flight = Some(2);
    let mut builder = Caldera::builder(config);
    let fact = builder.create_table("fact", Schema::homogeneous("c", 3, AttrType::Int64), Layout::Dsm).unwrap();
    for k in 0..20_000i64 {
        builder.load(fact, k, &[Value::Int64(k), Value::Int64(k % 40), Value::Int64(1)]).unwrap();
    }
    let dim = builder.create_table("dim", Schema::homogeneous("d", 2, AttrType::Int64), Layout::Dsm).unwrap();
    for k in 0..40i64 {
        builder.load(dim, k, &[Value::Int64(k), Value::Int64(k % 4)]).unwrap();
    }
    let churn = builder.create_table("churn", Schema::homogeneous("w", 2, AttrType::Int64), Layout::Dsm).unwrap();
    for k in 0..1_000i64 {
        builder.load(churn, k, &[Value::Int64(k), Value::Int64(0)]).unwrap();
    }
    (builder.start().unwrap(), fact, dim, churn)
}

fn scan_query() -> ScanAggQuery {
    ScanAggQuery { predicates: vec![Predicate::between(0, 0.0, 15_000.0)], aggregate: AggExpr::SumColumns(vec![2]) }
}

fn join_plan() -> OlapPlan {
    OlapPlan {
        predicates: vec![],
        join: Some(JoinSpec {
            probe_column: 1,
            build_key: 0,
            build_predicates: vec![Predicate::between(0, 0.0, 19.0)],
        }),
        group_by: Some(PlanColumn::Build(1)),
        aggregates: vec![AggExpr::SumColumns(vec![2]), AggExpr::Count],
    }
}

#[test]
fn concurrent_clients_and_a_writer_never_change_an_answer() {
    let (caldera, fact, dim, churn) = build_engine();
    let scan = scan_query();
    let plan = join_plan();

    // Serial oracle on the initial data; the writer never touches `fact` or
    // `dim`, so these bits are the law for every concurrent query below.
    caldera.refresh_snapshot().unwrap();
    let oracle_scan = caldera.run_olap(fact, &scan).unwrap().value.to_bits();
    let oracle_groups = caldera.run_olap_plan(fact, Some(dim), &plan).unwrap().groups;

    let caldera = Arc::new(caldera);
    let stop_writer = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(CLIENTS + 1));

    // Writer: transactions against the churn table plus periodic snapshot
    // refreshes, racing the clients the whole time.
    let writer = {
        let caldera = Arc::clone(&caldera);
        let stop = Arc::clone(&stop_writer);
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            barrier.wait();
            let mut txns = 0u64;
            let mut refreshes = 0u64;
            while !stop.load(Ordering::SeqCst) {
                let key = (txns % 1_000) as i64;
                caldera
                    .execute_txn(Arc::new(move |ctx| {
                        let mut rec = ctx.read_for_update(churn, key)?;
                        rec[1] = Value::Int64(rec[1].as_i64().unwrap() + 1);
                        ctx.update(churn, key, rec)
                    }))
                    .unwrap();
                txns += 1;
                if txns.is_multiple_of(5) {
                    caldera.refresh_snapshot().unwrap();
                    refreshes += 1;
                }
                std::thread::yield_now();
            }
            (txns, refreshes)
        })
    };

    let clients: Vec<_> = (0..CLIENTS)
        .map(|worker| {
            let caldera = Arc::clone(&caldera);
            let barrier = Arc::clone(&barrier);
            let scan = scan.clone();
            let plan = plan.clone();
            let oracle_groups = oracle_groups.clone();
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..QUERIES_PER_CLIENT {
                    if (i as usize + worker).is_multiple_of(2) {
                        let out = caldera.run_olap(fact, &scan).unwrap();
                        assert_eq!(out.value.to_bits(), oracle_scan, "a concurrent refresh corrupted a scan");
                    } else {
                        let out = caldera.run_olap_plan(fact, Some(dim), &plan).unwrap();
                        assert_eq!(out.groups, oracle_groups, "a concurrent refresh corrupted a join plan");
                    }
                }
            })
        })
        .collect();

    for c in clients {
        c.join().unwrap();
    }
    stop_writer.store(true, Ordering::SeqCst);
    let (txns, refreshes) = writer.join().unwrap();
    assert!(txns > 0, "the writer must have raced the clients");

    let Ok(caldera) = Arc::try_unwrap(caldera) else { panic!("all threads joined") };
    let stats = caldera.shutdown();
    assert_eq!(stats.oltp.committed, txns);
    assert_eq!(stats.olap_queries, (CLIENTS as u64) * u64::from(QUERIES_PER_CLIENT) + 2);
    // +1: the oracle's explicit refresh before the serial queries.
    assert_eq!(stats.snapshots_taken, refreshes + 1);
    assert_eq!(stats.snapshot_release_failures, 0);
    // Every permit was returned, and contention really happened somewhere.
    for site in &stats.olap_sites {
        assert_eq!(site.admission.in_flight, 0);
        assert_eq!(site.admission.admitted, site.queries);
    }
    // With zero cache retention, a positive attach counter means concurrent
    // same-key queries genuinely shared one in-flight materialisation.
    assert!(
        stats.plan_cache.shared_scan_attaches > 0,
        "8 clients re-deriving the same tables must have attached to an in-flight build at least once"
    );
}
