//! Engine configuration.

use crate::health::SiteHealthConfig;
use h2tap_gpu_sim::{AccessMode, FaultPlan, GpuSpec};
use h2tap_obs::ObsConfig;
use h2tap_olap::{CpuScanProfile, CpuSpec, DataPlacement, SnapshotPolicy};
use h2tap_oltp::{OltpConfig, PartitionerKind};
use h2tap_scheduler::{CalibrationConfig, CostModel, DEFAULT_GPU_DISPATCH_OVERHEAD_SECS};
use std::time::Duration;

/// Which simulated GPU the data-parallel archipelago uses and how table data
/// is exposed to it.
#[derive(Debug, Clone)]
pub struct OlapDeviceConfig {
    /// The GPU model (defaults to the GTX 980 of the paper's testbed).
    pub gpu: GpuSpec,
    /// Data placement (defaults to UVA host-resident shared memory, the
    /// Caldera prototype's choice).
    pub placement: DataPlacement,
    /// Fixed per-query GPU dispatch cost the placement heuristic charges
    /// (kernel launches, registration, read-back).
    pub dispatch_overhead_secs: f64,
}

impl Default for OlapDeviceConfig {
    fn default() -> Self {
        Self {
            gpu: GpuSpec::gtx_980(),
            placement: DataPlacement::Host(AccessMode::Uva),
            dispatch_overhead_secs: DEFAULT_GPU_DISPATCH_OVERHEAD_SECS,
        }
    }
}

/// An optional third execution site: several (possibly heterogeneous) GPUs
/// that shard each table's chunks and run them in parallel — the Table 1
/// device-mix scenario. `None` (the default) leaves the engine with the
/// classic CPU + single-GPU pair.
#[derive(Debug, Clone)]
pub struct OlapMultiGpuConfig {
    /// The device mix, in shard order (e.g. `h2tap_gpu_sim::table1_mix(3)`).
    pub gpus: Vec<GpuSpec>,
    /// Data placement shared by every device of the mix.
    pub placement: DataPlacement,
    /// Fixed per-query dispatch cost of the site (kernel launches on every
    /// device, shard bookkeeping, cross-device merge) — the seed of the
    /// site's own calibrated intercept.
    pub dispatch_overhead_secs: f64,
}

impl OlapMultiGpuConfig {
    /// A multi-GPU site over `gpus` with the Caldera default placement
    /// (UVA host-resident shared memory) and dispatch overhead.
    pub fn new(gpus: Vec<GpuSpec>) -> Self {
        Self {
            gpus,
            placement: DataPlacement::Host(AccessMode::Uva),
            dispatch_overhead_secs: DEFAULT_GPU_DISPATCH_OVERHEAD_SECS,
        }
    }

    /// Overrides the placement.
    #[must_use]
    pub fn with_placement(mut self, placement: DataPlacement) -> Self {
        self.placement = placement;
        self
    }
}

/// The CPU execution site of the data-parallel archipelago.
#[derive(Debug, Clone)]
pub struct OlapCpuConfig {
    /// Scan execution profile (defaults to zonemap-skipping vectorised
    /// execution, the shared engine's Caldera configuration).
    pub profile: CpuScanProfile,
    /// Sustained per-core memory bandwidth in GB/s (defaults to the paper
    /// server's 68 GB/s spread over its 24 cores).
    pub per_core_bandwidth_gbps: f64,
}

impl Default for OlapCpuConfig {
    fn default() -> Self {
        Self {
            profile: CpuScanProfile::vectorized(),
            per_core_bandwidth_gbps: CpuSpec::default().per_core_bandwidth_gbps(),
        }
    }
}

/// Top-level Caldera configuration.
#[derive(Debug, Clone)]
pub struct CalderaConfig {
    /// The task-parallel (OLTP) archipelago configuration: one worker per
    /// CPU core, one partition per worker.
    pub oltp: OltpConfig,
    /// How keys map to OLTP partitions (pluggable here instead of hard-coded
    /// at runtime construction; `CalderaBuilder::set_partitioner` still
    /// accepts fully custom implementations).
    pub partitioner: PartitionerKind,
    /// CPU cores reserved for the data-parallel archipelago (available for
    /// scheduler-driven migration and CPU-side OLAP).
    pub olap_cpu_cores: usize,
    /// The data-parallel archipelago's GPU.
    pub olap_device: OlapDeviceConfig,
    /// Optional multi-GPU execution site (a Table 1 device mix with sharded
    /// tables). `None` keeps the classic CPU + single-GPU pair.
    pub olap_multi_gpu: Option<OlapMultiGpuConfig>,
    /// The data-parallel archipelago's CPU execution site.
    pub olap_cpu: OlapCpuConfig,
    /// How often OLAP queries refresh their snapshot.
    pub snapshot_policy: SnapshotPolicy,
    /// The placement feedback loop: whether (and how fast) measured site
    /// times recalibrate the cost-model constants placement decides on.
    pub calibration: CalibrationConfig,
    /// Optional explicit seed for the placement cost model. `None` (the
    /// default) derives the seed from `olap_cpu` / `olap_device` — per-tuple
    /// cost, per-core bandwidth, dispatch overhead. Experiments set `Some`
    /// to start from deliberately wrong constants and watch the feedback
    /// loop correct them.
    pub cost_model_seed: Option<CostModel>,
    /// Byte budget of the shared plan-data cache (materialised columns +
    /// join hash tables). `None` (the default) is unbounded — the pre-budget
    /// behaviour; `Some(0)` disables the cache; any other value bounds
    /// occupancy with LRU eviction that never drops entries pinned by
    /// in-flight queries.
    pub olap_plan_cache_budget_bytes: Option<u64>,
    /// Per-site OLAP admission budget: how many queries one execution site
    /// runs concurrently. The excess waits in strict arrival order. `None`
    /// (the default) is unbounded; `Some(0)` is clamped to one in-flight
    /// query per site.
    pub olap_admission_in_flight: Option<u32>,
    /// Query tracing. Off by default (the hot path pays one relaxed atomic
    /// load per would-be span); when enabled every dispatch records typed
    /// spans into a bounded ring readable via `Caldera::trace_spans` /
    /// `Caldera::chrome_trace_json`.
    pub observability: ObsConfig,
    /// Deterministic fault injection for the simulated GPU fleet. `None`
    /// (the default) injects nothing; a quiet plan (all rates zero) is
    /// observationally identical to `None`. Faults surface as typed
    /// `H2Error::Fault` errors and feed the engine's resilience ladder.
    pub fault_plan: Option<FaultPlan>,
    /// Bounded in-place retries for *transient* faults before the dispatch
    /// falls back to the next-best site.
    pub olap_retry_max: u32,
    /// Base backoff slept between transient-fault retries (doubled per
    /// attempt). Kept tiny by default: the faults are simulated, the
    /// backoff is real wall clock.
    pub olap_retry_backoff: Duration,
    /// How long a dispatch may wait in a site's admission queue before
    /// giving up with `H2Error::Timeout`. `None` (the default) waits
    /// forever — but a dead site can then strand queued clients, so chaos
    /// configurations should set a budget.
    pub olap_admission_timeout: Option<Duration>,
    /// Wall-clock budget for one query across every retry and fallback
    /// rung. Once exceeded, the ladder stops and the query fails with
    /// `H2Error::Timeout`. `None` (the default) never gives up.
    pub olap_query_deadline: Option<Duration>,
    /// Per-site circuit-breaker thresholds (windowed error rate →
    /// quarantine → half-open probes → re-admission).
    pub site_health: SiteHealthConfig,
}

impl Default for CalderaConfig {
    fn default() -> Self {
        Self {
            oltp: OltpConfig::default(),
            partitioner: PartitionerKind::default(),
            olap_cpu_cores: 0,
            olap_device: OlapDeviceConfig::default(),
            olap_multi_gpu: None,
            olap_cpu: OlapCpuConfig::default(),
            snapshot_policy: SnapshotPolicy::PerQuery,
            calibration: CalibrationConfig::default(),
            cost_model_seed: None,
            olap_plan_cache_budget_bytes: None,
            olap_admission_in_flight: None,
            observability: ObsConfig::default(),
            fault_plan: None,
            olap_retry_max: 3,
            olap_retry_backoff: Duration::from_micros(50),
            olap_admission_timeout: None,
            olap_query_deadline: None,
            site_health: SiteHealthConfig::default(),
        }
    }
}

impl CalderaConfig {
    /// Convenience: a config with `workers` OLTP workers and defaults
    /// everywhere else.
    pub fn with_workers(workers: usize) -> Self {
        Self { oltp: OltpConfig::with_workers(workers), ..Self::default() }
    }

    /// The cost-model seed the engine's calibrator starts from: the explicit
    /// `cost_model_seed` when set, otherwise the constants of the configured
    /// CPU profile and GPU device.
    pub fn initial_cost_model(&self) -> CostModel {
        self.cost_model_seed.unwrap_or(CostModel {
            cpu_per_tuple_ns: self.olap_cpu.profile.per_tuple_ns,
            cpu_core_bandwidth_gbps: self.olap_cpu.per_core_bandwidth_gbps,
            gpu_dispatch_overhead_secs: self.olap_device.dispatch_overhead_secs,
            gpu_bandwidth_scale: 1.0,
            multi_gpu_dispatch_overhead_secs: self
                .olap_multi_gpu
                .as_ref()
                .map_or(h2tap_scheduler::DEFAULT_GPU_DISPATCH_OVERHEAD_SECS, |mg| mg.dispatch_overhead_secs),
            multi_gpu_bandwidth_scale: 1.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper_prototype() {
        let c = CalderaConfig::default();
        assert_eq!(c.olap_device.gpu.name, "GTX 980");
        assert!(matches!(c.olap_device.placement, DataPlacement::Host(AccessMode::Uva)));
        assert!(matches!(c.snapshot_policy, SnapshotPolicy::PerQuery));
        assert_eq!(c.partitioner, PartitionerKind::Modulo);
        // 24-core server with 68 GB/s aggregate: ~2.83 GB/s per core.
        assert!((c.olap_cpu.per_core_bandwidth_gbps - 68.0 / 24.0).abs() < 1e-9);
        assert!(c.olap_device.dispatch_overhead_secs > 0.0);
        assert!(!c.observability.tracing, "query tracing is opt-in");
        // Calibration is on by default and seeds from the same constants.
        assert!(c.calibration.enabled);
        let seed = c.initial_cost_model();
        assert_eq!(seed.cpu_per_tuple_ns, c.olap_cpu.profile.per_tuple_ns);
        assert_eq!(seed.cpu_core_bandwidth_gbps, c.olap_cpu.per_core_bandwidth_gbps);
        assert_eq!(seed.gpu_dispatch_overhead_secs, c.olap_device.dispatch_overhead_secs);
        assert_eq!(seed.gpu_bandwidth_scale, 1.0);
    }

    #[test]
    fn multi_gpu_config_seeds_its_own_dispatch_overhead() {
        let mut c = CalderaConfig::default();
        assert!(c.olap_multi_gpu.is_none(), "the multi-GPU site is opt-in");
        c.olap_multi_gpu = Some(OlapMultiGpuConfig {
            dispatch_overhead_secs: 75e-6,
            ..OlapMultiGpuConfig::new(h2tap_gpu_sim::table1_mix(2))
        });
        let seed = c.initial_cost_model();
        assert_eq!(seed.multi_gpu_dispatch_overhead_secs, 75e-6);
        assert_eq!(seed.multi_gpu_bandwidth_scale, 1.0);
        // The single-GPU intercept is untouched by the multi site's.
        assert_eq!(seed.gpu_dispatch_overhead_secs, c.olap_device.dispatch_overhead_secs);
    }

    #[test]
    fn explicit_cost_model_seed_wins() {
        let c = CalderaConfig {
            cost_model_seed: Some(CostModel { cpu_per_tuple_ns: 500.0, ..CostModel::default() }),
            ..CalderaConfig::default()
        };
        assert_eq!(c.initial_cost_model().cpu_per_tuple_ns, 500.0);
    }

    #[test]
    fn with_workers_sets_worker_count() {
        assert_eq!(CalderaConfig::with_workers(8).oltp.workers, 8);
    }
}
