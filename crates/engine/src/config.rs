//! Engine configuration.

use h2tap_gpu_sim::{AccessMode, GpuSpec};
use h2tap_olap::{DataPlacement, SnapshotPolicy};
use h2tap_oltp::OltpConfig;

/// Which simulated GPU the data-parallel archipelago uses and how table data
/// is exposed to it.
#[derive(Debug, Clone)]
pub struct OlapDeviceConfig {
    /// The GPU model (defaults to the GTX 980 of the paper's testbed).
    pub gpu: GpuSpec,
    /// Data placement (defaults to UVA host-resident shared memory, the
    /// Caldera prototype's choice).
    pub placement: DataPlacement,
}

impl Default for OlapDeviceConfig {
    fn default() -> Self {
        Self { gpu: GpuSpec::gtx_980(), placement: DataPlacement::Host(AccessMode::Uva) }
    }
}

/// Top-level Caldera configuration.
#[derive(Debug, Clone)]
pub struct CalderaConfig {
    /// The task-parallel (OLTP) archipelago configuration: one worker per
    /// CPU core, one partition per worker.
    pub oltp: OltpConfig,
    /// CPU cores reserved for the data-parallel archipelago (available for
    /// scheduler-driven migration and CPU-side OLAP).
    pub olap_cpu_cores: usize,
    /// The data-parallel archipelago's GPU.
    pub olap_device: OlapDeviceConfig,
    /// How often OLAP queries refresh their snapshot.
    pub snapshot_policy: SnapshotPolicy,
}

impl Default for CalderaConfig {
    fn default() -> Self {
        Self {
            oltp: OltpConfig::default(),
            olap_cpu_cores: 0,
            olap_device: OlapDeviceConfig::default(),
            snapshot_policy: SnapshotPolicy::PerQuery,
        }
    }
}

impl CalderaConfig {
    /// Convenience: a config with `workers` OLTP workers and defaults
    /// everywhere else.
    pub fn with_workers(workers: usize) -> Self {
        Self { oltp: OltpConfig::with_workers(workers), ..Self::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper_prototype() {
        let c = CalderaConfig::default();
        assert_eq!(c.olap_device.gpu.name, "GTX 980");
        assert!(matches!(c.olap_device.placement, DataPlacement::Host(AccessMode::Uva)));
        assert!(matches!(c.snapshot_policy, SnapshotPolicy::PerQuery));
    }

    #[test]
    fn with_workers_sets_worker_count() {
        assert_eq!(CalderaConfig::with_workers(8).oltp.workers, 8);
    }
}
