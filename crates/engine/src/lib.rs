//! Caldera: the H2TAP prototype engine.
//!
//! This crate is the public face of the workspace: it wires the
//! shared-memory database (`h2tap-storage`), the message-passing OLTP
//! archipelago (`h2tap-oltp`), the GPU OLAP archipelago (`h2tap-olap` over
//! `h2tap-gpu-sim`) and the archipelago scheduler (`h2tap-scheduler`)
//! together behind one API:
//!
//! ```no_run
//! use caldera::{Caldera, CalderaConfig};
//! use h2tap_common::{AttrType, Schema, Value, ScanAggQuery, AggExpr};
//! use h2tap_storage::Layout;
//!
//! let mut builder = Caldera::builder(CalderaConfig::default());
//! let table = builder
//!     .create_table("accounts", Schema::homogeneous("c", 2, AttrType::Int64), Layout::PAPER_PAX)
//!     .unwrap();
//! builder.load(table, 42, &[Value::Int64(42), Value::Int64(100)]).unwrap();
//! let caldera = builder.start().unwrap();
//!
//! // OLTP: read-modify-write through the task-parallel archipelago.
//! caldera.execute_txn_on(h2tap_common::PartitionId(0), std::sync::Arc::new(move |ctx| {
//!     let mut rec = ctx.read_for_update(table, 42)?;
//!     rec[1] = Value::Int64(rec[1].as_i64().unwrap() + 1);
//!     ctx.update(table, 42, rec)
//! })).unwrap();
//!
//! // OLAP: aggregate on the data-parallel archipelago (the GPU model).
//! let q = ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![1]));
//! let out = caldera.run_olap(table, &q).unwrap();
//! println!("sum = {} in {}", out.value, out.time);
//! ```

pub mod admission;
pub mod builder;
pub mod config;
pub mod engine;
pub mod health;

pub use admission::{AdmissionGate, AdmissionPermit, AdmissionStats};
pub use builder::CalderaBuilder;
pub use config::{CalderaConfig, OlapCpuConfig, OlapDeviceConfig, OlapMultiGpuConfig};
pub use engine::{Caldera, HtapStats, OlapSiteStats, ResilienceStats};
pub use health::{SiteHealth, SiteHealthConfig, SiteHealthState, SiteHealthStats};

pub use h2tap_gpu_sim::{DeviceLossPoint, FaultPlan};

pub use h2tap_common::{GroupRow, JoinSpec, OlapPlan, PlanColumn};
pub use h2tap_obs::{MetricsSnapshot, ObsConfig, SpanKind, SpanRecord};
pub use h2tap_olap::{CpuScanProfile, DataPlacement, ExecutionSite, OlapOutcome, PlanOutcome, SnapshotPolicy};
pub use h2tap_oltp::{OltpConfig, PartitionerKind, TxnProc};
pub use h2tap_scheduler::{OlapTarget, PlacementExplanation, RegretSummary, SiteCapability};
