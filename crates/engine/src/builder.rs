//! Building a Caldera instance: schema definition, bulk loading, startup.
//!
//! Bulk loading happens before the OLTP workers start so that each worker can
//! take ownership of its partition's primary-key index without any
//! synchronisation — the same single-writer discipline the runtime enforces
//! afterwards.

use crate::config::CalderaConfig;
use crate::engine::Caldera;
use h2tap_common::{H2Error, PartitionId, RecordId, Result, Schema, TableId, Value};
use h2tap_gpu_sim::GpuDevice;
use h2tap_olap::{CpuOlapEngine, CpuSpec, ExecutionSite, GpuOlapEngine, MultiGpuOlapEngine};
use h2tap_oltp::{OltpRuntime, PartitionIndex, Partitioner, TxnGenerator};
use h2tap_scheduler::Scheduler;
use h2tap_storage::{Database, Layout};
use std::sync::Arc;

/// Staging area for schema and data before the archipelagos start.
pub struct CalderaBuilder {
    config: CalderaConfig,
    db: Arc<Database>,
    indexes: Vec<PartitionIndex>,
    partitioner: Arc<dyn Partitioner>,
    generator: Option<Arc<dyn TxnGenerator>>,
}

impl CalderaBuilder {
    /// Creates a builder for the given configuration.
    pub fn new(config: CalderaConfig) -> Self {
        // A zero-worker configuration is rejected by `start`; clamp here so
        // building the partitioner and database (which need >= 1 partition)
        // cannot panic before that error is reported.
        let partitions = config.oltp.workers.max(1);
        let partitioner = config.partitioner.build(partitions);
        Self {
            config,
            db: Database::new(partitions),
            indexes: vec![PartitionIndex::new(); partitions],
            partitioner,
            generator: None,
        }
    }

    /// The shared-memory database being populated.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Replaces the default modulo partitioner. Must be called before any
    /// data is loaded so keys land on the partitions the partitioner expects.
    pub fn set_partitioner(&mut self, partitioner: Arc<dyn Partitioner>) -> Result<()> {
        if self.indexes.iter().any(|idx| self.db.tables().iter().any(|t| idx.key_count(*t) > 0)) {
            return Err(H2Error::Config("partitioner must be set before loading data".into()));
        }
        self.partitioner = partitioner;
        Ok(())
    }

    /// Installs a benchmark-mode transaction generator (used by the
    /// evaluation harness; normal applications submit transactions instead).
    pub fn set_generator(&mut self, generator: Arc<dyn TxnGenerator>) {
        self.generator = Some(generator);
    }

    /// Creates a table.
    pub fn create_table(&mut self, name: &str, schema: Schema, layout: Layout) -> Result<TableId> {
        self.db.create_table(name, schema, layout)
    }

    /// Loads one keyed record, routing it to the partition the partitioner
    /// assigns and indexing it there.
    pub fn load(&mut self, table: TableId, key: i64, values: &[Value]) -> Result<RecordId> {
        let partition = self.partitioner.partition_of(table, key);
        self.load_to(partition, table, key, values)
    }

    /// Loads one keyed record into an explicit partition. The partition must
    /// agree with the partitioner, otherwise transactions would never find
    /// the key.
    pub fn load_to(&mut self, partition: PartitionId, table: TableId, key: i64, values: &[Value]) -> Result<RecordId> {
        let expected = self.partitioner.partition_of(table, key);
        if expected != partition {
            return Err(H2Error::Config(format!(
                "key {key} belongs to {expected} according to the partitioner, not {partition}"
            )));
        }
        let rid = self.db.insert(partition, table, values)?;
        self.indexes[partition.0 as usize].insert(table, key, rid.row);
        Ok(rid)
    }

    /// Starts both archipelagos and returns the running engine.
    pub fn start(self) -> Result<Caldera> {
        let CalderaBuilder { config, db, indexes, partitioner, generator } = self;
        if config.oltp.workers == 0 {
            // Fail here, before any scheduler or site construction: an
            // engine without OLTP workers could never route a transaction.
            return Err(H2Error::Config("the engine needs at least one OLTP worker".into()));
        }
        let mut accelerators = vec![config.olap_device.gpu.name.clone()];
        if let Some(mg) = &config.olap_multi_gpu {
            accelerators.extend(mg.gpus.iter().map(|g| g.name.clone()));
        }
        let scheduler = Scheduler::new(config.oltp.workers, config.olap_cpu_cores, accelerators);
        // The execution sites of the data-parallel archipelago: the GPU
        // model, the CPU scan engine over the archipelago's cores, and —
        // when configured — the sharded multi-GPU device mix.
        // Fault injection threads into the devices before they are moved
        // into their engines: each device gets an injector derived from the
        // plan seed, its site label and its ordinal, so the fault sequence
        // is reproducible per device.
        let fault_plan = config.fault_plan.as_ref();
        let mut gpu_device = GpuDevice::new(config.olap_device.gpu.clone());
        if let Some(plan) = fault_plan {
            gpu_device.set_fault_injector(plan.injector_for("gpu", 0));
        }
        let gpu = GpuOlapEngine::new(gpu_device, config.olap_device.placement);
        let cpu_cores = (config.olap_cpu_cores as u32).max(1);
        let cpu = CpuOlapEngine::with_spec_and_profile(
            CpuSpec {
                cores: cpu_cores,
                mem_bandwidth_gbps: config.olap_cpu.per_core_bandwidth_gbps * f64::from(cpu_cores),
            },
            config.olap_cpu.profile,
        );
        let mut sites: Vec<Box<dyn ExecutionSite>> = vec![Box::new(gpu), Box::new(cpu)];
        if let Some(mg) = &config.olap_multi_gpu {
            let devices = mg
                .gpus
                .iter()
                .enumerate()
                .map(|(ordinal, spec)| {
                    let mut device = GpuDevice::new(spec.clone());
                    if let Some(plan) = fault_plan {
                        device.set_fault_injector(plan.injector_for("multi_gpu", ordinal));
                    }
                    device
                })
                .collect();
            sites.push(Box::new(MultiGpuOlapEngine::new(devices, mg.placement)?));
        }
        let oltp = OltpRuntime::start(Arc::clone(&db), config.oltp.clone(), partitioner, indexes, generator)?;
        Ok(Caldera::assemble(config, db, oltp, sites, scheduler))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CalderaConfig;
    use h2tap_common::AttrType;
    use h2tap_oltp::StridePartitioner;

    #[test]
    fn load_routes_keys_by_partitioner() {
        let mut b = CalderaBuilder::new(CalderaConfig::with_workers(2));
        let t = b.create_table("t", Schema::homogeneous("c", 2, AttrType::Int64), Layout::Dsm).unwrap();
        b.load(t, 0, &[Value::Int64(0), Value::Int64(0)]).unwrap();
        b.load(t, 1, &[Value::Int64(1), Value::Int64(0)]).unwrap();
        assert_eq!(b.database().row_count(t).unwrap(), 2);
    }

    #[test]
    fn load_to_rejects_misrouted_keys() {
        let mut b = CalderaBuilder::new(CalderaConfig::with_workers(2));
        let t = b.create_table("t", Schema::homogeneous("c", 2, AttrType::Int64), Layout::Dsm).unwrap();
        // Key 1 belongs to partition 1 under the modulo partitioner.
        assert!(b.load_to(PartitionId(0), t, 1, &[Value::Int64(1), Value::Int64(0)]).is_err());
    }

    #[test]
    fn config_selects_the_partitioner() {
        let mut config = CalderaConfig::with_workers(2);
        config.partitioner = h2tap_oltp::PartitionerKind::Stride { stride: 100 };
        let mut b = CalderaBuilder::new(config);
        let t = b.create_table("t", Schema::homogeneous("c", 2, AttrType::Int64), Layout::Dsm).unwrap();
        // Key 150 belongs to partition 1 under the configured stride scheme
        // (it would belong to partition 0 under the default modulo scheme).
        b.load_to(PartitionId(1), t, 150, &[Value::Int64(150), Value::Int64(0)]).unwrap();
        assert!(b.load_to(PartitionId(0), t, 151, &[Value::Int64(151), Value::Int64(0)]).is_err());
    }

    #[test]
    fn partitioner_cannot_change_after_loading() {
        let mut b = CalderaBuilder::new(CalderaConfig::with_workers(2));
        let t = b.create_table("t", Schema::homogeneous("c", 2, AttrType::Int64), Layout::Dsm).unwrap();
        b.load(t, 0, &[Value::Int64(0), Value::Int64(0)]).unwrap();
        let err = b.set_partitioner(Arc::new(StridePartitioner::new(1000, 2)));
        assert!(err.is_err());
    }
}
