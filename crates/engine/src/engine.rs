//! The running Caldera engine: both archipelagos over one shared database.
//!
//! Analytical queries are not hard-wired to a device: `run_olap` builds
//! [`PlacementHints`] from live state (query scan footprint, GPU residency,
//! the CPU cores the data-parallel archipelago currently owns), asks
//! [`place_olap_query`] for a target, and dispatches to the matching
//! [`ExecutionSite`] — the simulated GPU or the archipelago's CPU cores.
//!
//! # Concurrency
//!
//! The engine serves analytical queries from many client threads at once.
//! Instead of one big lock around all OLAP state, the state is split by
//! what actually needs exclusion:
//!
//! - `snap` (`RwLock`): the execution sites and the snapshot they are
//!   registered against. Queries hold it **shared** for their whole
//!   execution, so any number run concurrently; a snapshot refresh takes it
//!   **exclusive**, draining in-flight queries first so it can never yank a
//!   registered table out from under a running scan.
//! - `meta` (`Mutex`): small bookkeeping — query numbering, snapshot and
//!   time counters, the placement calibrator. Held only for microseconds
//!   around dispatch edges, never across execution.
//! - per-site state ([`SiteSlot`]): registrations, counters and the
//!   [`AdmissionGate`] that bounds how many queries one site runs at once
//!   (excess admissions wait in strict arrival order).
//!
//! The sites themselves are `&self`-concurrent (see [`ExecutionSite`]), and
//! the shared plan-data cache deduplicates concurrent materialisations of
//! the same derived state (shared scans), so the answer of every query stays
//! byte-identical to a serial execution.

use crate::admission::{AdmissionGate, AdmissionStats};
use crate::config::CalderaConfig;
use crate::health::{SiteHealth, SiteHealthState, SiteHealthStats};
use h2tap_common::{H2Error, OlapPlan, PartitionId, PlanCacheStats, Result, ScanAggQuery, SimDuration, TableId};
use h2tap_obs::{MetricsRegistry, MetricsSnapshot, SpanEvent, SpanKind, SpanRecord, Tracer};
use h2tap_olap::{ExecutionSite, OlapOutcome, PlanDataCache, PlanOutcome, RegisteredTable, SnapshotPolicy};
use h2tap_oltp::{BenchmarkWindow, OltpRuntime, OltpStats, TxnProc};
use h2tap_scheduler::{
    estimate_target_secs, place_olap_query_sites, ArchipelagoKind, CalibrationReport, CoreMigrationPolicy,
    CostCalibrator, CostModel, OlapTarget, PlacementExplanation, PlacementHints, PlacementObservation, Scheduler,
    SiteCapability,
};
use h2tap_storage::{CowStats, Database, Snapshot};
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::HashMap;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-execution-site OLAP counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OlapSiteStats {
    /// The placement target this site serves.
    pub target: OlapTarget,
    /// Site name ("gpu", "cpu").
    pub label: &'static str,
    /// Queries dispatched to the site.
    pub queries: u64,
    /// Total simulated execution time on the site.
    pub time: SimDuration,
    /// Admission counters: executions admitted, admissions that had to
    /// queue behind the site's in-flight budget, permits currently held.
    pub admission: AdmissionStats,
    /// Circuit-breaker position and fault counters for the site.
    pub health: SiteHealthStats,
}

/// Engine-wide resilience-ladder counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Typed site faults observed by dispatch (injected or organic).
    pub faults: u64,
    /// In-place retries after transient faults.
    pub retries: u64,
    /// Dispatches re-routed to the next-best site after a failure.
    pub fallbacks: u64,
    /// Queries abandoned because the per-query deadline expired mid-ladder.
    pub deadline_timeouts: u64,
}

/// Interior-mutable backing for [`ResilienceStats`].
#[derive(Debug, Default)]
struct ResilienceCounters {
    faults: AtomicU64,
    retries: AtomicU64,
    fallbacks: AtomicU64,
    deadline_timeouts: AtomicU64,
}

impl ResilienceCounters {
    fn snapshot(&self) -> ResilienceStats {
        ResilienceStats {
            faults: self.faults.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            deadline_timeouts: self.deadline_timeouts.load(Ordering::Relaxed),
        }
    }
}

/// Combined HTAP statistics for experiment reporting.
#[derive(Debug, Clone, Default)]
pub struct HtapStats {
    /// OLTP-side counters.
    pub oltp: OltpStats,
    /// Copy-on-write / snapshot GC counters.
    pub cow: CowStats,
    /// Analytical queries executed (all sites).
    pub olap_queries: u64,
    /// Total simulated OLAP execution time (all sites).
    pub olap_time: SimDuration,
    /// Per-site OLAP counters, in site order (GPU first).
    pub olap_sites: Vec<OlapSiteStats>,
    /// Snapshots taken by the OLAP path.
    pub snapshots_taken: u64,
    /// Snapshot releases that failed during shutdown (the storage layer no
    /// longer knew the snapshot — an accounting bug upstream). Refresh-path
    /// release failures are not counted here: they fail the refresh itself.
    pub snapshot_release_failures: u64,
    /// Placement feedback-loop state: the current calibrated cost model and
    /// per-site predicted-vs-actual error statistics.
    pub calibration: CalibrationReport,
    /// Hit/miss counters of the plan-data cache shared by every execution
    /// site (materialised columns + zonemap stats, join hash tables).
    pub plan_cache: PlanCacheStats,
    /// Metrics registry snapshot: per-path latency histograms
    /// (`olap.latency.*`, simulated seconds), per-site query counters, and
    /// the plan-cache counter/gauge families mirrored at sampling time.
    pub metrics: MetricsSnapshot,
    /// The most recent placement decisions (bounded ring, newest last):
    /// every site's estimated time, the chosen and executing site, the
    /// observed time and the regret against the best estimate.
    pub placements: Vec<PlacementExplanation>,
    /// Resilience-ladder counters: faults observed, in-place retries,
    /// next-best-site fallbacks, deadline expiries.
    pub resilience: ResilienceStats,
}

impl HtapStats {
    /// Queries the given site answered.
    pub fn olap_queries_on(&self, target: OlapTarget) -> u64 {
        self.olap_sites.iter().find(|s| s.target == target).map_or(0, |s| s.queries)
    }

    /// Mean relative prediction error for `target` (EWMA of
    /// `|predicted - actual| / actual` over that site's observations).
    pub fn prediction_error_on(&self, target: OlapTarget) -> Option<f64> {
        self.calibration.site(target).filter(|s| s.observations > 0).map(|s| s.mean_rel_error)
    }
}

/// Stable metric-name suffix for a placement target.
fn site_key(target: OlapTarget) -> &'static str {
    match target {
        OlapTarget::Gpu => "gpu",
        OlapTarget::Cpu => "cpu",
        OlapTarget::MultiGpu => "multi_gpu",
    }
}

/// One execution site plus its registrations, counters and admission gate.
/// Everything is interior-mutable so concurrent queries share the slot
/// through the snapshot gate's read lock.
struct SiteSlot {
    site: Box<dyn ExecutionSite>,
    /// Table → site handle for the current snapshot. Held across
    /// `register_table` so a table is registered exactly once even when
    /// concurrent queries race to first use.
    registered: Mutex<HashMap<TableId, RegisteredTable>>,
    queries: AtomicU64,
    time: Mutex<SimDuration>,
    admission: AdmissionGate,
    /// Per-site circuit breaker consulted by placement and fed by every
    /// dispatch outcome.
    health: SiteHealth,
}

impl SiteSlot {
    fn new(
        site: Box<dyn ExecutionSite>,
        admission_budget: Option<u32>,
        health: crate::health::SiteHealthConfig,
    ) -> Self {
        Self {
            site,
            registered: Mutex::new(HashMap::new()),
            queries: AtomicU64::new(0),
            time: Mutex::new(SimDuration::ZERO),
            admission: AdmissionGate::new(admission_budget),
            health: SiteHealth::new(health),
        }
    }

    fn stats(&self) -> OlapSiteStats {
        OlapSiteStats {
            target: self.site.target(),
            label: self.site.label(),
            queries: self.queries.load(Ordering::Relaxed),
            time: *self.time.lock(),
            admission: self.admission.stats(),
            health: self.health.stats(),
        }
    }
}

/// The execution sites and the snapshot they are registered against —
/// everything a snapshot refresh must replace atomically. Queries read it
/// shared; refreshes write it exclusively (draining in-flight queries).
struct SnapshotGate {
    sites: Vec<SiteSlot>,
    snapshot: Option<Arc<Snapshot>>,
}

impl SnapshotGate {
    fn slot(&self, target: OlapTarget) -> Option<&SiteSlot> {
        self.sites.iter().find(|slot| slot.site.target() == target)
    }

    /// The slot serving `target`, or a configuration error when the engine
    /// was built without that site (e.g. `run_olap_on(.., MultiGpu)` with no
    /// `olap_multi_gpu` configured).
    fn require_slot(&self, target: OlapTarget) -> Result<&SiteSlot> {
        self.slot(target).ok_or_else(|| H2Error::Config(format!("no execution site configured for target {target:?}")))
    }

    /// The capabilities of every site the engine actually runs — what the
    /// N-way placement argmin and the calibrator consume.
    fn capabilities(&self) -> Vec<SiteCapability> {
        self.sites.iter().map(|slot| slot.site.capability()).collect()
    }
}

/// Small dispatch bookkeeping: query numbering, refresh/time counters and
/// the placement feedback loop. Locked briefly at dispatch edges, never
/// across query execution.
struct OlapMeta {
    query_index: u64,
    snapshots_taken: u64,
    total_time: SimDuration,
    /// The placement feedback loop: every dispatch records an observation
    /// here, and placement reads its calibrated model back out.
    calibrator: CostCalibrator,
}

/// The snapshot-gate guard an analytical query executes under: shared in
/// the common case, exclusive when this query performed the refresh.
enum QueryGuard<'a> {
    Shared(RwLockReadGuard<'a, SnapshotGate>),
    Exclusive(RwLockWriteGuard<'a, SnapshotGate>),
}

impl Deref for QueryGuard<'_> {
    type Target = SnapshotGate;

    fn deref(&self) -> &SnapshotGate {
        match self {
            QueryGuard::Shared(guard) => guard,
            QueryGuard::Exclusive(guard) => guard,
        }
    }
}

/// The running engine.
pub struct Caldera {
    config: CalderaConfig,
    db: Arc<Database>,
    oltp: OltpRuntime,
    /// Sites + current snapshot (see [`SnapshotGate`]). Queries hold the
    /// read side for their whole execution; refreshes take the write side.
    snap: RwLock<SnapshotGate>,
    /// Dispatch bookkeeping (see [`OlapMeta`]). Lock order: `snap` before
    /// `meta`, never the reverse.
    meta: Mutex<OlapMeta>,
    /// The plan-data cache shared by every site; invalidated on snapshot
    /// refresh so a stale snapshot's derived state is never retained.
    plan_cache: PlanDataCache,
    scheduler: Scheduler,
    next_home: AtomicU64,
    /// Optional core-migration policy consulted after every placement
    /// observation (see [`Caldera::set_migration_policy`]).
    migration_policy: Mutex<Option<Box<dyn CoreMigrationPolicy>>>,
    /// Query tracing (a no-op unless `config.observability.tracing`); the
    /// same handle is installed into every execution site and the shared
    /// plan-data cache at assembly.
    tracer: Tracer,
    /// Counters and latency histograms every dispatch feeds.
    metrics: MetricsRegistry,
    /// Engine-wide resilience-ladder counters (faults, retries, fallbacks,
    /// deadline expiries).
    resilience: ResilienceCounters,
}

impl Caldera {
    /// Begins building an engine.
    pub fn builder(config: CalderaConfig) -> crate::builder::CalderaBuilder {
        crate::builder::CalderaBuilder::new(config)
    }

    pub(crate) fn assemble(
        config: CalderaConfig,
        db: Arc<Database>,
        oltp: OltpRuntime,
        mut sites: Vec<Box<dyn ExecutionSite>>,
        scheduler: Scheduler,
    ) -> Self {
        let calibrator = CostCalibrator::new(config.calibration, config.initial_cost_model());
        // One plan-data cache for every site: derived state (materialised
        // columns, zonemap stats, join hash tables) built by one site's
        // dispatch is reused by all of them for the same snapshot, bounded
        // by the configured byte budget.
        let plan_cache = PlanDataCache::with_budget(config.olap_plan_cache_budget_bytes);
        let tracer = Tracer::from_config(&config.observability);
        for site in &mut sites {
            site.set_plan_cache(plan_cache.clone());
            // After set_plan_cache: installing the tracer also threads it
            // into the (shared) cache the site now holds.
            site.set_tracer(tracer.clone());
        }
        let admission_budget = config.olap_admission_in_flight;
        let health_config = config.site_health;
        Self {
            config,
            db,
            oltp,
            snap: RwLock::new(SnapshotGate {
                sites: sites.into_iter().map(|site| SiteSlot::new(site, admission_budget, health_config)).collect(),
                snapshot: None,
            }),
            meta: Mutex::new(OlapMeta {
                query_index: 0,
                snapshots_taken: 0,
                total_time: SimDuration::ZERO,
                calibrator,
            }),
            plan_cache,
            scheduler,
            next_home: AtomicU64::new(0),
            migration_policy: Mutex::new(None),
            tracer,
            metrics: MetricsRegistry::new(),
            resilience: ResilienceCounters::default(),
        }
    }

    /// The shared-memory database.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The OLTP runtime (task-parallel archipelago).
    pub fn oltp(&self) -> &OltpRuntime {
        &self.oltp
    }

    /// The archipelago scheduler.
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// The configured snapshot policy.
    pub fn snapshot_policy(&self) -> SnapshotPolicy {
        self.config.snapshot_policy
    }

    /// The snapshot analytical queries currently run against: `None` before
    /// the first query (and after a refresh failed partway).
    pub fn current_snapshot(&self) -> Option<Arc<Snapshot>> {
        self.snap.read().snapshot.clone()
    }

    /// The current calibrated placement cost model — starts at the
    /// configured seed and tracks measured site times from then on.
    pub fn cost_model(&self) -> CostModel {
        self.meta.lock().calibrator.model()
    }

    /// A snapshot of the placement feedback loop's state (also available as
    /// [`HtapStats::calibration`]).
    pub fn calibration_report(&self) -> CalibrationReport {
        self.meta.lock().calibrator.report()
    }

    /// The recorded trace spans, oldest first. Empty unless the engine was
    /// built with `config.observability.tracing` set.
    pub fn trace_spans(&self) -> Vec<SpanRecord> {
        self.tracer.snapshot()
    }

    /// The recorded trace as Chrome trace-event JSON — load it in Perfetto
    /// or `chrome://tracing` to see every query's placement, cache,
    /// materialisation and kernel spans per execution site.
    pub fn chrome_trace_json(&self) -> String {
        h2tap_obs::chrome_trace_json(&self.trace_spans())
    }

    /// A point-in-time snapshot of the metrics registry (the same content
    /// [`HtapStats::metrics`] carries): query counters, latency histograms,
    /// plan-cache counter/gauge families, admission counters, trace-ring
    /// health.
    pub fn metrics(&self) -> MetricsSnapshot {
        let cache = self.plan_cache.stats();
        let sites = self.site_stats();
        self.metrics_snapshot(&cache, &sites)
    }

    /// Point-in-time per-site counters (shared read of the snapshot gate).
    fn site_stats(&self) -> Vec<OlapSiteStats> {
        let snap = self.snap.read();
        snap.sites.iter().map(SiteSlot::stats).collect()
    }

    /// Mirrors the point-in-time cache, admission and trace-ring state into
    /// the registry (counters and gauges kept in their own families — see
    /// [`PlanCacheStats::counters`] / [`PlanCacheStats::gauges`]) and
    /// snapshots it.
    fn metrics_snapshot(&self, cache: &PlanCacheStats, sites: &[OlapSiteStats]) -> MetricsSnapshot {
        let counters = cache.counters();
        self.metrics.counter_set("plan_cache.column_hits", counters.column_hits);
        self.metrics.counter_set("plan_cache.column_misses", counters.column_misses);
        self.metrics.counter_set("plan_cache.hash_hits", counters.hash_hits);
        self.metrics.counter_set("plan_cache.hash_misses", counters.hash_misses);
        self.metrics.counter_set("plan_cache.invalidations", counters.invalidations);
        self.metrics.counter_set("plan_cache.evictions", counters.evictions);
        self.metrics.counter_set("plan_cache.shared_scan_attaches", counters.shared_scan_attaches);
        let gauges = cache.gauges();
        self.metrics.gauge_set("plan_cache.occupancy_bytes", gauges.occupancy_bytes as f64);
        if let Some(budget) = gauges.budget_bytes {
            self.metrics.gauge_set("plan_cache.budget_bytes", budget as f64);
        }
        for site in sites {
            let key = site_key(site.target);
            self.metrics.counter_set(&format!("olap.admission.admitted.{key}"), site.admission.admitted);
            self.metrics.counter_set(&format!("olap.admission.queued.{key}"), site.admission.queued);
            self.metrics.counter_set(&format!("olap.admission.timeouts.{key}"), site.admission.timeouts);
            self.metrics.gauge_set(&format!("olap.admission.in_flight.{key}"), f64::from(site.admission.in_flight));
            self.metrics.counter_set(&format!("olap.site_health.failures.{key}"), site.health.failures);
            self.metrics.counter_set(&format!("olap.site_health.quarantines.{key}"), site.health.quarantines);
            self.metrics.counter_set(&format!("olap.site_health.probes.{key}"), site.health.probes);
            // Breaker position as a step gauge: 0 closed, 1 half-open,
            // 2 quarantined (dashboards alert on anything > 0).
            let state = match site.health.state {
                SiteHealthState::Closed => 0.0,
                SiteHealthState::HalfOpen => 1.0,
                SiteHealthState::Quarantined => 2.0,
            };
            self.metrics.gauge_set(&format!("olap.site_health.state.{key}"), state);
            self.metrics.gauge_set(&format!("olap.site_health.window_error_rate.{key}"), site.health.window_error_rate);
        }
        let resilience = self.resilience.snapshot();
        self.metrics.counter_set("olap.faults.observed", resilience.faults);
        self.metrics.counter_set("olap.faults.retries", resilience.retries);
        self.metrics.counter_set("olap.faults.fallbacks", resilience.fallbacks);
        self.metrics.counter_set("olap.faults.deadline_timeouts", resilience.deadline_timeouts);
        self.metrics.counter_set("trace.spans.recorded", self.tracer.recorded());
        self.metrics.counter_set("trace.spans.dropped", self.tracer.dropped());
        self.metrics.snapshot()
    }

    /// Installs a core-migration policy. After every placement observation
    /// the engine consults it with the current calibration report and the
    /// archipelagos' core counts; a recommendation moves one core through the
    /// scheduler (which keeps enforcing its own invariants, e.g. the
    /// task-parallel archipelago is never emptied). `None` (the default)
    /// leaves core membership entirely manual.
    pub fn set_migration_policy(&self, policy: Option<Box<dyn CoreMigrationPolicy>>) {
        *self.migration_policy.lock() = policy;
    }

    /// Consults the installed migration policy (if any) with the latest
    /// calibration report and applies at most one core move.
    fn apply_migration_policy(&self, report: &CalibrationReport) {
        let mut migration_policy = self.migration_policy.lock();
        let Some(policy) = migration_policy.as_mut() else { return };
        let data_cores = self.scheduler.archipelago(ArchipelagoKind::DataParallel).core_count() as u32;
        let task_cores = self.scheduler.archipelago(ArchipelagoKind::TaskParallel).core_count() as u32;
        if let Some(migration) = policy.recommend(report, data_cores, task_cores) {
            let source = self.scheduler.archipelago(migration.from);
            let Some(&core) = source.cpu_cores.iter().next() else { return };
            // The scheduler re-validates the move; a racing manual migration
            // losing the core is not an error worth failing a query over.
            // Only a move that actually happened commits the policy's
            // rate-limiting state — a refused migration (e.g. the source
            // archipelago would be emptied) must not burn the cooldown.
            if self.scheduler.migrate_core(core, migration.from, migration.to).is_ok() {
                policy.commit(report);
            }
        }
    }

    /// Records one completed dispatch with the calibrator and returns the
    /// updated report for the migration-policy hook. Runs under the meta
    /// lock; the policy itself is applied after the lock is released. The
    /// sites' enumerated capabilities supply the streaming feature of the
    /// site that actually answered (per-device specs and shard fractions for
    /// the GPU family), so each site's terms calibrate against its own mix.
    #[allow(clippy::too_many_arguments)]
    fn record_observation(
        &self,
        meta: &mut OlapMeta,
        capabilities: &[SiteCapability],
        hints: &PlacementHints,
        forced: bool,
        chosen: OlapTarget,
        site: OlapTarget,
        time: SimDuration,
        breakdown: h2tap_common::ExecBreakdown,
        query_seq: u64,
    ) -> CalibrationReport {
        let observation = PlacementObservation {
            site,
            forced,
            hints: *hints,
            predicted_secs: estimate_target_secs(capabilities, site, hints),
            actual_secs: time.as_secs_f64(),
            breakdown: Some(breakdown),
        };
        meta.calibrator.observe_sites(capabilities, &observation);
        // Explain the dispatch against the freshly calibrated model: every
        // site's estimate, the regret of the executing site vs the best, and
        // the running regret summary `CalibrationReport::regret` exposes.
        meta.calibrator.explain_dispatch(capabilities, chosen, &observation, query_seq);
        self.metrics.counter_add("olap.queries", 1);
        self.metrics.counter_add(&format!("olap.queries.{}", site_key(site)), 1);
        let secs = time.as_secs_f64();
        self.metrics.observe_secs("olap.latency.secs", secs);
        self.metrics.observe_secs(&format!("olap.latency.{}", site_key(site)), secs);
        meta.calibrator.report()
    }

    /// Executes a transaction on an explicitly chosen home worker.
    pub fn execute_txn_on(&self, home: PartitionId, proc: TxnProc) -> Result<()> {
        self.scheduler.record_dispatch(ArchipelagoKind::TaskParallel, 1.0);
        self.oltp.execute(home, proc)
    }

    /// Executes a transaction, choosing a home worker round-robin ("an
    /// incoming transaction can be scheduled to run on any thread").
    pub fn execute_txn(&self, proc: TxnProc) -> Result<()> {
        let workers = self.oltp.workers() as u64;
        if workers == 0 {
            // Unreachable through `CalderaBuilder::start` (the runtime
            // refuses to start with zero workers), but a modulo by zero
            // must never panic a library call.
            return Err(H2Error::Config("cannot route a transaction: the engine has no OLTP workers".into()));
        }
        let home = PartitionId((self.next_home.fetch_add(1, Ordering::Relaxed) % workers) as u32);
        self.execute_txn_on(home, proc)
    }

    /// Runs the OLTP benchmark generator (if one was configured) for
    /// `window` and returns throughput.
    pub fn run_oltp_window(&self, window: Duration) -> Result<BenchmarkWindow> {
        self.oltp.run_for(window)
    }

    /// Takes a fresh snapshot immediately, releasing the previous OLAP
    /// snapshot (manual freshness control). Waits for in-flight analytical
    /// queries to drain, so no query ever loses its tables mid-execution.
    pub fn refresh_snapshot(&self) -> Result<()> {
        let mut snap = self.snap.write();
        Self::refresh_gate(&self.db, &mut snap, &self.plan_cache)?;
        // h2tap: allow(lock_order) — ordering rule: `snap` is always acquired before `meta`, never the reverse; the meta guard here is a statement temporary that cannot outlive the snap guard.
        self.meta.lock().snapshots_taken += 1;
        Ok(())
    }

    /// Replaces the gate's snapshot: resets every site's registrations,
    /// drops the old snapshot's derived plan data, releases the old
    /// snapshot and takes a new one. Requires the gate's write side.
    ///
    /// A failed release is a real accounting bug (the snapshot was already
    /// released behind the engine's back) and is propagated, not swallowed;
    /// the gate is left without a snapshot, so the next query — or retry —
    /// starts clean instead of double-counting against the broken one.
    fn refresh_gate(db: &Arc<Database>, snap: &mut SnapshotGate, plan_cache: &PlanDataCache) -> Result<()> {
        let old = snap.snapshot.take();
        for slot in &snap.sites {
            slot.site.reset_tables();
            slot.registered.lock().clear();
        }
        // The old snapshot's derived plan data can never be served again
        // (fresh epoch, fresh cache keys); drop it eagerly so its column
        // copies and hash tables do not outlive the snapshot itself.
        plan_cache.invalidate();
        if let Some(old) = old {
            db.release_snapshot(&old)?;
        }
        snap.snapshot = Some(db.snapshot());
        Ok(())
    }

    /// Runs an analytical query against `table` on the data-parallel
    /// archipelago, refreshing the snapshot according to the configured
    /// [`SnapshotPolicy`] and dispatching to the execution site the
    /// scheduler's placement heuristic picks from live hints.
    pub fn run_olap(&self, table: TableId, query: &ScanAggQuery) -> Result<OlapOutcome> {
        self.run_olap_dispatch(table, query, None)
    }

    /// Like [`Caldera::run_olap`] but forces the execution site, bypassing
    /// the placement heuristic (used by experiments and site-equivalence
    /// tests; production queries should go through `run_olap`).
    pub fn run_olap_on(&self, table: TableId, query: &ScanAggQuery, target: OlapTarget) -> Result<OlapOutcome> {
        self.run_olap_dispatch(table, query, Some(target))
    }

    /// Runs a relational plan (filter → optional hash join on `build` →
    /// optional group-by, see [`OlapPlan`]) on the data-parallel
    /// archipelago. Placement uses the plan's access-pattern features —
    /// probe-side random bytes and hash-table footprint against free device
    /// memory — on top of the scan hints, so a join plan can route
    /// differently than a scan of the same table.
    pub fn run_olap_plan(&self, probe: TableId, build: Option<TableId>, plan: &OlapPlan) -> Result<PlanOutcome> {
        self.run_olap_plan_dispatch(probe, build, plan, None)
    }

    /// Like [`Caldera::run_olap_plan`] but forces the execution site,
    /// bypassing the placement heuristic.
    pub fn run_olap_plan_on(
        &self,
        probe: TableId,
        build: Option<TableId>,
        plan: &OlapPlan,
        target: OlapTarget,
    ) -> Result<PlanOutcome> {
        self.run_olap_plan_dispatch(probe, build, plan, Some(target))
    }

    /// Draws this query's number, refreshes the snapshot if the policy (or
    /// a missing snapshot) demands it, and returns the gate guard the query
    /// executes under plus its snapshot and 1-based sequence number.
    ///
    /// Fast path: the policy did not fire and a snapshot exists — a shared
    /// read of the gate, so queries run concurrently. Slow path: take the
    /// write side (draining in-flight queries) and re-check, so racing
    /// first queries refresh the missing snapshot exactly once while a
    /// policy-fired refresh (e.g. `PerQuery`) always happens.
    fn snapshot_for_query(&self) -> Result<(QueryGuard<'_>, Arc<Snapshot>, u64)> {
        let (index, policy_fired) = {
            let mut meta = self.meta.lock();
            let index = meta.query_index;
            meta.query_index += 1;
            (index, self.config.snapshot_policy.should_refresh(index))
        };
        if !policy_fired {
            let snap = self.snap.read();
            if let Some(snapshot) = snap.snapshot.clone() {
                return Ok((QueryGuard::Shared(snap), snapshot, index + 1));
            }
        }
        let mut snap = self.snap.write();
        if policy_fired || snap.snapshot.is_none() {
            Self::refresh_gate(&self.db, &mut snap, &self.plan_cache)?;
            // h2tap: allow(lock_order) — ordering rule: `snap` is always acquired before `meta`, never the reverse; the meta guard here is a statement temporary that cannot outlive the snap guard.
            self.meta.lock().snapshots_taken += 1;
        }
        let snapshot =
            snap.snapshot.clone().ok_or_else(|| H2Error::Config("snapshot missing after refresh".to_string()))?;
        Ok((QueryGuard::Exclusive(snap), snapshot, index + 1))
    }

    /// Base placement hints every analytical query shares: residency and
    /// core count from live engine state, cost constants from the
    /// **calibrated** model (seeded by configuration, then continuously
    /// re-estimated from measured site times — the feedback loop that keeps
    /// hand-tuned constants from silently drifting away from what the
    /// engines actually report).
    fn base_hints(&self, snap: &SnapshotGate, cpu_cores: u32) -> PlacementHints {
        let model = self.meta.lock().calibrator.model();
        let gpu_resident = snap.slot(OlapTarget::Gpu).map_or(0.0, |slot| slot.site.resident_fraction());
        model.apply_to(PlacementHints {
            gpu_resident_fraction: gpu_resident,
            available_cpu_cores: cpu_cores,
            ..PlacementHints::default()
        })
    }

    /// Folds one finished dispatch into the meta bookkeeping and returns
    /// the calibration report for the migration-policy hook.
    #[allow(clippy::too_many_arguments)]
    fn account_dispatch(
        &self,
        capabilities: &[SiteCapability],
        hints: &PlacementHints,
        forced: bool,
        chosen: OlapTarget,
        site: OlapTarget,
        time: SimDuration,
        breakdown: h2tap_common::ExecBreakdown,
        query_seq: u64,
    ) -> CalibrationReport {
        let mut meta = self.meta.lock();
        meta.total_time += time;
        self.record_observation(&mut meta, capabilities, hints, forced, chosen, site, time, breakdown, query_seq)
    }

    /// Health-aware placement: consults every site's circuit breaker so
    /// quarantined sites never enter the argmin (and the calibrator never
    /// learns from a poisoned site), then charges a probe slot when a
    /// half-open site is the winner. When *every* site is inadmissible the
    /// plain argmin over all sites decides — serving a query on a sick site
    /// beats refusing it outright.
    fn place_with_health(
        &self,
        snap: &SnapshotGate,
        capabilities: &[SiteCapability],
        hints: &PlacementHints,
    ) -> OlapTarget {
        let mut healthy: Vec<SiteCapability> = Vec::with_capacity(capabilities.len());
        for cap in capabilities {
            let Some(slot) = snap.slot(cap.target()) else { continue };
            let verdict = slot.health.consult();
            if verdict.reopened {
                // Quarantined → half-open: the backoff elapsed, probes run.
                self.tracer.record(SpanEvent::new(SpanKind::Quarantine).site(cap.target()));
                self.metrics.counter_add(&format!("olap.site_health.reopened.{}", site_key(cap.target())), 1);
            }
            if verdict.admissible {
                healthy.push(cap.clone());
            }
        }
        let target = if healthy.is_empty() {
            place_olap_query_sites(capabilities, hints)
        } else {
            place_olap_query_sites(&healthy, hints)
        };
        if let Some(slot) = snap.slot(target) {
            slot.health.note_probe();
        }
        target
    }

    /// The next-best execution site once `excluded` sites have failed this
    /// query: the placement argmin over the remaining admissible sites, with
    /// the CPU site as the guaranteed last resort (host DRAM always holds
    /// the data, even when the eligibility heuristics rule the CPU out).
    fn next_best_site(
        snap: &SnapshotGate,
        capabilities: &[SiteCapability],
        hints: &PlacementHints,
        excluded: &[OlapTarget],
    ) -> Option<OlapTarget> {
        let remaining: Vec<SiteCapability> = capabilities
            .iter()
            .filter(|cap| !excluded.contains(&cap.target()))
            .filter(|cap| snap.slot(cap.target()).is_some_and(|slot| slot.health.is_admissible()))
            .cloned()
            .collect();
        if !remaining.is_empty() {
            let chosen = place_olap_query_sites(&remaining, hints);
            // The argmin's nothing-eligible default is not necessarily in
            // `remaining`; never route back to a site that already failed.
            if remaining.iter().any(|cap| cap.target() == chosen) {
                if let Some(slot) = snap.slot(chosen) {
                    slot.health.note_probe();
                }
                return Some(chosen);
            }
        }
        (!excluded.contains(&OlapTarget::Cpu) && snap.slot(OlapTarget::Cpu).is_some()).then_some(OlapTarget::Cpu)
    }

    /// Runs `attempt` through the resilience ladder. Transient faults are
    /// retried in place with doubling backoff; persistent faults, device OOM
    /// and admission congestion fall back to the next-best healthy site; a
    /// configured per-query deadline cuts the ladder with
    /// [`H2Error::Timeout`]. Every outcome feeds the attempted site's
    /// circuit breaker (congestion excepted — a full queue is not the site's
    /// fault). Forced dispatches still retry transient faults in place but
    /// never fall back: the caller asked for exactly that site, and the
    /// site-equivalence tests rely on seeing its error. All successful paths
    /// return bit-identical results because every site computes the same
    /// fixed-chunked, chunk-ordered answer.
    fn run_resilient<T>(
        &self,
        snap: &SnapshotGate,
        capabilities: &[SiteCapability],
        hints: &PlacementHints,
        forced: bool,
        initial: OlapTarget,
        mut attempt: impl FnMut(OlapTarget) -> Result<T>,
    ) -> Result<T> {
        let deadline = self.config.olap_query_deadline.map(|d| Instant::now() + d);
        let mut target = initial;
        let mut excluded: Vec<OlapTarget> = Vec::new();
        let mut retries: u32 = 0;
        loop {
            let err = match attempt(target) {
                Ok(out) => {
                    if let Some(slot) = snap.slot(target) {
                        if slot.health.record_success() {
                            // Probe budget met: the quarantine is lifted.
                            self.tracer.record(SpanEvent::new(SpanKind::Quarantine).site(target));
                            self.metrics.counter_add(&format!("olap.site_health.readmissions.{}", site_key(target)), 1);
                        }
                    }
                    return Ok(out);
                }
                Err(err) => err,
            };
            let expired = deadline.is_some_and(|d| Instant::now() >= d);
            // Classify the failure: does it earn an in-place retry, and is
            // it evidence against the site's health?
            let (retry_in_place, health_feed) = match &err {
                H2Error::Fault { kind, transient, .. } => {
                    self.resilience.faults.fetch_add(1, Ordering::Relaxed);
                    self.metrics.counter_add(&format!("olap.faults.{}", kind.name()), 1);
                    self.tracer.record(SpanEvent::new(SpanKind::Fault).site(target));
                    (*transient, Some(!*transient))
                }
                // The placement hints cannot see every device constraint (a
                // device-resident table can simply not fit): a fallback site
                // still holds the data, so OOM reroutes instead of failing.
                H2Error::GpuOutOfMemory { .. } => (false, Some(false)),
                // Admission congestion: the site is healthy but full —
                // another site may have room right now.
                H2Error::Timeout(_) => (false, None),
                _ => return Err(err),
            };
            if retry_in_place && retries < self.config.olap_retry_max {
                if expired {
                    self.resilience.deadline_timeouts.fetch_add(1, Ordering::Relaxed);
                    return Err(H2Error::Timeout(format!(
                        "query deadline expired after {retries} retries on {target:?}"
                    )));
                }
                retries += 1;
                self.resilience.retries.fetch_add(1, Ordering::Relaxed);
                self.tracer.record(SpanEvent::new(SpanKind::Retry).site(target));
                let backoff = self.config.olap_retry_backoff.saturating_mul(1u32 << retries.min(10));
                if backoff > Duration::ZERO {
                    std::thread::sleep(backoff);
                }
                continue;
            }
            // Retries exhausted, a persistent fault, OOM or congestion: this
            // site is done for this query. Feed the breaker, then fail over.
            if let Some(persistent) = health_feed {
                if let Some(slot) = snap.slot(target) {
                    if slot.health.record_failure(persistent) {
                        self.tracer.record(SpanEvent::new(SpanKind::Quarantine).site(target));
                        self.metrics.counter_add(&format!("olap.site_health.quarantines.{}", site_key(target)), 1);
                    }
                }
            }
            if forced {
                return Err(err);
            }
            if expired {
                self.resilience.deadline_timeouts.fetch_add(1, Ordering::Relaxed);
                return Err(H2Error::Timeout(format!("query deadline expired while failing over from {target:?}")));
            }
            excluded.push(target);
            let Some(next) = Self::next_best_site(snap, capabilities, hints, &excluded) else {
                return Err(err);
            };
            self.resilience.fallbacks.fetch_add(1, Ordering::Relaxed);
            self.tracer.record(SpanEvent::new(SpanKind::Fallback).site(next));
            retries = 0;
            target = next;
        }
    }

    fn run_olap_dispatch(
        &self,
        table: TableId,
        query: &ScanAggQuery,
        forced: Option<OlapTarget>,
    ) -> Result<OlapOutcome> {
        self.scheduler.record_dispatch(ArchipelagoKind::DataParallel, 1.0);
        let (snap, snapshot, query_seq) = self.snapshot_for_query()?;
        let table_meta = self.db.table_meta(table)?;
        let frozen = snapshot.table(table)?;

        // Live placement inputs: the query's scan footprint, how much of the
        // data already sits in device memory, and the CPU cores the
        // data-parallel archipelago owns right now (core migration included).
        // Hints are built for forced dispatches too: a forced run is ground
        // truth about its site and must still feed the calibrator — it just
        // never consults the placement heuristic.
        let cpu_cores = self.scheduler.archipelago(ArchipelagoKind::DataParallel).core_count() as u32;
        let hints = PlacementHints {
            bytes_to_scan: query.scan_bytes(&frozen.schema, frozen.row_count()),
            rows: frozen.row_count(),
            ..self.base_hints(&snap, cpu_cores)
        };
        let capabilities = snap.capabilities();
        self.tracer.set_query(query_seq);
        let placing = self.tracer.start();
        let target = forced.unwrap_or_else(|| self.place_with_health(&snap, &capabilities, &hints));
        self.tracer.record_wall(SpanEvent::new(SpanKind::Placement).site(target), placing);

        let admission_timeout = self.config.olap_admission_timeout;
        let outcome = self.run_resilient(&snap, &capabilities, &hints, forced.is_some(), target, |t| {
            Self::execute_on_slot(&snap, t, cpu_cores, table, frozen, &table_meta.name, query, admission_timeout)
        })?;
        // Close the loop: predicted vs site-reported time recalibrates the
        // cost model (outcome.site, not target — an OOM fallback is a CPU
        // observation), then the migration policy sees the fresh report.
        let report = self.account_dispatch(
            &capabilities,
            &hints,
            forced.is_some(),
            target,
            outcome.site,
            outcome.time,
            outcome.breakdown,
            query_seq,
        );
        drop(snap);
        self.apply_migration_policy(&report);
        Ok(outcome)
    }

    fn run_olap_plan_dispatch(
        &self,
        probe: TableId,
        build: Option<TableId>,
        plan: &OlapPlan,
        forced: Option<OlapTarget>,
    ) -> Result<PlanOutcome> {
        self.scheduler.record_dispatch(ArchipelagoKind::DataParallel, 1.0);
        let (snap, snapshot, query_seq) = self.snapshot_for_query()?;
        let probe_meta = self.db.table_meta(probe)?;
        let probe_frozen = snapshot.table(probe)?;
        let build_parts = match build {
            Some(id) => Some((id, snapshot.table(id)?, self.db.table_meta(id)?)),
            None => None,
        };

        // Plan placement adds the access-pattern features to the scan hints:
        // how many bytes the hash probes gather at random, and whether the
        // hash state fits in free device memory at all. As in the scan path,
        // the hints are built even for forced dispatches so they can feed
        // the calibrator.
        let cpu_cores = self.scheduler.archipelago(ArchipelagoKind::DataParallel).core_count() as u32;
        let probe_rows = probe_frozen.row_count();
        let build_bytes =
            build_parts.as_ref().map_or(0, |(_, frozen, _)| plan.build_scan_bytes(&frozen.schema, frozen.row_count()));
        let gpu_free = snap.slot(OlapTarget::Gpu).and_then(|slot| slot.site.free_device_bytes());
        let hints = PlacementHints {
            bytes_to_scan: plan.probe_scan_bytes(&probe_frozen.schema, probe_rows) + build_bytes,
            rows: probe_rows,
            random_access_bytes: plan.random_access_bytes(probe_rows),
            hash_table_bytes: build_parts
                .as_ref()
                .map_or(0, |(_, frozen, _)| plan.hash_table_bytes(frozen.row_count())),
            // None (a host-DRAM "device") means unbounded headroom. The
            // multi-GPU site's per-device free memory travels through the
            // enumerated capabilities instead (min-per-shard footprint).
            gpu_free_bytes: gpu_free.unwrap_or(u64::MAX),
            ..self.base_hints(&snap, cpu_cores)
        };
        let capabilities = snap.capabilities();
        self.tracer.set_query(query_seq);
        let placing = self.tracer.start();
        let target = forced.unwrap_or_else(|| self.place_with_health(&snap, &capabilities, &hints));
        self.tracer.record_wall(SpanEvent::new(SpanKind::Placement).site(target), placing);

        let admission_timeout = self.config.olap_admission_timeout;
        let run = |target: OlapTarget| -> Result<PlanOutcome> {
            let slot = snap.require_slot(target)?;
            // The permit spans registration + execution; dropping it on the
            // error path frees this site's slot before the fallback competes
            // for the next site's gate.
            let _permit = slot.admission.admit_timeout(admission_timeout)?;
            if target == OlapTarget::Cpu {
                slot.site.set_cores(cpu_cores.max(1));
            }
            // Track tables this attempt registers: if the attempt fails
            // (e.g. the build table or the plan's scratch OOMs after the
            // probe table was registered), roll the new registrations back
            // so the fallback — and every later query on this snapshot —
            // does not inherit stranded device buffers.
            let mut newly: Vec<TableId> = Vec::new();
            let attempt = (|| {
                let probe_handle = Self::handle_for(slot, probe, probe_frozen, &probe_meta.name, Some(&mut newly))?;
                let build_pair = match &build_parts {
                    Some((id, frozen, meta)) => {
                        Some((Self::handle_for(slot, *id, frozen, &meta.name, Some(&mut newly))?, *frozen))
                    }
                    None => None,
                };
                slot.site.execute_plan(probe_handle, probe_frozen, build_pair, plan)
            })();
            match attempt {
                Ok(outcome) => {
                    slot.queries.fetch_add(1, Ordering::Relaxed);
                    *slot.time.lock() += outcome.time;
                    Ok(outcome)
                }
                Err(err) => {
                    let mut registered = slot.registered.lock();
                    for table in newly {
                        if let Some(handle) = registered.remove(&table) {
                            slot.site.unregister_table(handle);
                        }
                    }
                    Err(err)
                }
            }
        };

        let outcome = self.run_resilient(&snap, &capabilities, &hints, forced.is_some(), target, run)?;
        let report = self.account_dispatch(
            &capabilities,
            &hints,
            forced.is_some(),
            target,
            outcome.site,
            outcome.time,
            outcome.breakdown,
            query_seq,
        );
        drop(snap);
        self.apply_migration_policy(&report);
        Ok(outcome)
    }

    /// Returns the slot's handle for `table`, registering the frozen image
    /// with the site on first use within the current snapshot. The
    /// registration map's lock is held across `register_table`, so racing
    /// first users register exactly once. When `track` is given, a table
    /// registered by this call is appended to it so the caller can roll the
    /// registration back if its overall attempt fails.
    fn handle_for(
        slot: &SiteSlot,
        table: TableId,
        frozen: &h2tap_storage::SnapshotTable,
        label: &str,
        track: Option<&mut Vec<TableId>>,
    ) -> Result<RegisteredTable> {
        let mut registered = slot.registered.lock();
        if let Some(h) = registered.get(&table) {
            return Ok(*h);
        }
        let h = slot.site.register_table(frozen, label)?;
        registered.insert(table, h);
        if let Some(track) = track {
            track.push(table);
        }
        Ok(h)
    }

    #[allow(clippy::too_many_arguments)]
    fn execute_on_slot(
        snap: &SnapshotGate,
        target: OlapTarget,
        cpu_cores: u32,
        table: TableId,
        frozen: &h2tap_storage::SnapshotTable,
        label: &str,
        query: &ScanAggQuery,
        admission_timeout: Option<Duration>,
    ) -> Result<OlapOutcome> {
        let slot = snap.require_slot(target)?;
        // RAII admission: held for registration + execution, released on
        // every path — an OOM error frees this site's slot before the
        // caller's fallback competes for the next site's gate. A configured
        // timeout bounds the queue wait so a wedged site cannot strand
        // clients (the ladder then tries another site).
        let _permit = slot.admission.admit_timeout(admission_timeout)?;
        if target == OlapTarget::Cpu {
            // A query placed on CPU must see the archipelago's current core
            // count, not the count at construction time.
            slot.site.set_cores(cpu_cores.max(1));
        }
        let handle = Self::handle_for(slot, table, frozen, label, None)?;
        let outcome = slot.site.execute(handle, frozen, query)?;
        slot.queries.fetch_add(1, Ordering::Relaxed);
        *slot.time.lock() += outcome.time;
        Ok(outcome)
    }

    /// Combined statistics across both archipelagos.
    pub fn stats(&self) -> HtapStats {
        self.stats_with_oltp(self.oltp.stats(), 0)
    }

    fn stats_with_oltp(&self, oltp: OltpStats, snapshot_release_failures: u64) -> HtapStats {
        let plan_cache = self.plan_cache.stats();
        let olap_sites = self.site_stats();
        let metrics = self.metrics_snapshot(&plan_cache, &olap_sites);
        let meta = self.meta.lock();
        HtapStats {
            oltp,
            cow: self.db.telemetry(),
            olap_queries: meta.query_index,
            olap_time: meta.total_time,
            olap_sites,
            snapshots_taken: meta.snapshots_taken,
            snapshot_release_failures,
            calibration: meta.calibrator.report(),
            plan_cache,
            metrics,
            placements: meta.calibrator.recent_placements().cloned().collect(),
            resilience: self.resilience.snapshot(),
        }
    }

    /// Stops the OLTP workers, releases the OLAP snapshot and returns final
    /// statistics.
    ///
    /// The workers stop **before** the statistics are captured, so the
    /// final counters include every transaction the workers drained on the
    /// way out (capturing first under-counted whatever committed during the
    /// stop). A snapshot release the storage layer refuses is counted in
    /// [`HtapStats::snapshot_release_failures`] instead of being swallowed.
    pub fn shutdown(mut self) -> HtapStats {
        let oltp = self.oltp.stop();
        let mut release_failures = 0;
        {
            let mut snap = self.snap.write();
            if let Some(snapshot) = snap.snapshot.take() {
                if self.db.release_snapshot(&snapshot).is_err() {
                    release_failures += 1;
                }
            }
        }
        self.stats_with_oltp(oltp, release_failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CalderaConfig;
    use h2tap_common::{AggExpr, AttrType, Schema, Value};
    use h2tap_gpu_sim::DeviceLossPoint;
    use h2tap_olap::DataPlacement;
    use h2tap_storage::Layout;

    fn engine_with_rows(workers: usize, rows: i64, policy: SnapshotPolicy) -> (Caldera, TableId) {
        let mut config = CalderaConfig::with_workers(workers);
        config.snapshot_policy = policy;
        engine_with_config(config, rows)
    }

    fn engine_with_config(config: CalderaConfig, rows: i64) -> (Caldera, TableId) {
        let mut builder = Caldera::builder(config);
        let t =
            builder.create_table("accounts", Schema::homogeneous("c", 2, AttrType::Int64), Layout::PAPER_PAX).unwrap();
        for k in 0..rows {
            builder.load(t, k, &[Value::Int64(k), Value::Int64(1)]).unwrap();
        }
        (builder.start().unwrap(), t)
    }

    #[test]
    fn htap_oltp_and_olap_coexist() {
        let (caldera, t) = engine_with_rows(2, 100, SnapshotPolicy::PerQuery);
        // OLAP before any update: sum of col1 = 100.
        let q = ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![1]));
        let before = caldera.run_olap(t, &q).unwrap();
        assert_eq!(before.value, 100.0);
        // A transaction bumps one record.
        caldera
            .execute_txn(Arc::new(move |ctx| {
                let mut rec = ctx.read_for_update(t, 7)?;
                rec[1] = Value::Int64(rec[1].as_i64().unwrap() + 9);
                ctx.update(t, 7, rec)
            }))
            .unwrap();
        // PerQuery policy: the next OLAP query sees the update.
        let after = caldera.run_olap(t, &q).unwrap();
        assert_eq!(after.value, 109.0);
        let stats = caldera.shutdown();
        assert_eq!(stats.oltp.committed, 1);
        assert_eq!(stats.olap_queries, 2);
        assert_eq!(stats.snapshots_taken, 2);
        assert_eq!(stats.snapshot_release_failures, 0);
        assert!(stats.olap_time > SimDuration::ZERO);
        // No CPU cores were reserved, so every query ran on the GPU.
        assert_eq!(stats.olap_queries_on(OlapTarget::Gpu), 2);
        assert_eq!(stats.olap_queries_on(OlapTarget::Cpu), 0);
    }

    #[test]
    fn shared_snapshots_trade_freshness_for_fewer_refreshes() {
        let (caldera, t) = engine_with_rows(2, 50, SnapshotPolicy::EveryN { queries: 10 });
        let q = ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![1]));
        let first = caldera.run_olap(t, &q).unwrap();
        assert_eq!(first.value, 50.0);
        caldera
            .execute_txn(Arc::new(move |ctx| {
                let mut rec = ctx.read_for_update(t, 0)?;
                rec[1] = Value::Int64(100);
                ctx.update(t, 0, rec)
            }))
            .unwrap();
        // Still within the same snapshot window: the update is not visible.
        let stale = caldera.run_olap(t, &q).unwrap();
        assert_eq!(stale.value, 50.0);
        let stats = caldera.shutdown();
        assert_eq!(stats.snapshots_taken, 1);
        // The update did trigger copy-on-write against the shared snapshot.
        assert!(stats.cow.pages_copied >= 1);
    }

    #[test]
    fn manual_policy_requires_explicit_refresh() {
        let (caldera, t) = engine_with_rows(2, 10, SnapshotPolicy::Manual);
        let q = ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![1]));
        // First query takes the initial snapshot even under Manual.
        assert_eq!(caldera.run_olap(t, &q).unwrap().value, 10.0);
        caldera
            .execute_txn(Arc::new(move |ctx| {
                let mut rec = ctx.read_for_update(t, 3)?;
                rec[1] = Value::Int64(5);
                ctx.update(t, 3, rec)
            }))
            .unwrap();
        assert_eq!(caldera.run_olap(t, &q).unwrap().value, 10.0, "stale until refreshed");
        caldera.refresh_snapshot().unwrap();
        assert_eq!(caldera.run_olap(t, &q).unwrap().value, 14.0);
        caldera.shutdown();
    }

    #[test]
    fn round_robin_hosting_spreads_transactions() {
        let (caldera, t) = engine_with_rows(4, 40, SnapshotPolicy::PerQuery);
        for _ in 0..8 {
            caldera.execute_txn(Arc::new(move |ctx| ctx.read(t, 1).map(|_| ()))).unwrap();
        }
        let stats = caldera.shutdown();
        assert_eq!(stats.oltp.committed, 8);
        // Three of every four transactions were hosted away from key 1's
        // partition and had to use the message protocol.
        assert!(stats.oltp.remote_requests >= 4);
    }

    #[test]
    fn host_resident_scans_route_to_cpu_when_cores_are_available() {
        // 8 archipelago CPU cores at ~2.8 GB/s each beat the PCIe link for
        // host-resident (UVA) data, so placement must pick the CPU site.
        let mut config = CalderaConfig::with_workers(2);
        config.olap_cpu_cores = 8;
        let (caldera, t) = engine_with_config(config, 200);
        let q = ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![1]));
        let out = caldera.run_olap(t, &q).unwrap();
        assert_eq!(out.site, OlapTarget::Cpu);
        assert_eq!(out.value, 200.0);
        let stats = caldera.shutdown();
        assert_eq!(stats.olap_queries_on(OlapTarget::Cpu), 1);
        assert_eq!(stats.olap_queries_on(OlapTarget::Gpu), 0);
    }

    #[test]
    fn device_resident_scans_route_to_gpu() {
        let mut config = CalderaConfig::with_workers(2);
        config.olap_cpu_cores = 8;
        config.olap_device.placement = DataPlacement::DeviceResident;
        let (caldera, t) = engine_with_config(config, 200_000);
        let q = ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![0, 1]));
        let out = caldera.run_olap(t, &q).unwrap();
        assert_eq!(out.site, OlapTarget::Gpu);
        let stats = caldera.shutdown();
        assert_eq!(stats.olap_queries_on(OlapTarget::Gpu), 1);
    }

    #[test]
    fn gpu_out_of_memory_falls_back_to_the_cpu_site() {
        // A device-resident table that cannot fit in device memory must not
        // fail the query: the scheduler's choice is overridden by the OOM and
        // the CPU site (which reads host DRAM) answers instead.
        let mut config = CalderaConfig::with_workers(2);
        config.olap_cpu_cores = 2;
        config.olap_device.placement = DataPlacement::DeviceResident;
        config.olap_device.gpu.mem_capacity_mib = 1; // 1 MiB device
        let (caldera, t) = engine_with_config(config, 200_000); // ~3 MiB of columns
        let q = ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![1]));
        let out = caldera.run_olap(t, &q).unwrap();
        assert_eq!(out.site, OlapTarget::Cpu);
        assert_eq!(out.value, 200_000.0);
        // Forcing the GPU surfaces the real error instead of falling back.
        assert!(caldera.run_olap_on(t, &q, OlapTarget::Gpu).is_err());
        let stats = caldera.shutdown();
        assert_eq!(stats.olap_queries_on(OlapTarget::Cpu), 1);
        assert_eq!(stats.olap_queries_on(OlapTarget::Gpu), 0);
    }

    #[test]
    fn forced_sites_agree_and_are_counted_separately() {
        let (caldera, t) = engine_with_rows(2, 500, SnapshotPolicy::EveryN { queries: 10 });
        let q = ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![1]));
        let gpu = caldera.run_olap_on(t, &q, OlapTarget::Gpu).unwrap();
        let cpu = caldera.run_olap_on(t, &q, OlapTarget::Cpu).unwrap();
        assert_eq!(gpu.site, OlapTarget::Gpu);
        assert_eq!(cpu.site, OlapTarget::Cpu);
        assert_eq!(gpu.value, cpu.value);
        assert_eq!(gpu.qualifying_rows, cpu.qualifying_rows);
        let stats = caldera.shutdown();
        assert_eq!(stats.olap_queries, 2);
        assert_eq!(stats.olap_queries_on(OlapTarget::Gpu), 1);
        assert_eq!(stats.olap_queries_on(OlapTarget::Cpu), 1);
        assert_eq!(stats.olap_sites.iter().map(|s| s.queries).sum::<u64>(), 2);
        // Every execution took exactly one admission permit and returned it.
        for site in &stats.olap_sites {
            assert_eq!(site.admission.admitted, site.queries);
            assert_eq!(site.admission.in_flight, 0);
        }
    }

    /// Fact table (k, fk = k % 40, v = 1) plus a 40-key dimension table
    /// (key, class = key % 4) loaded into one engine.
    fn engine_with_join_tables(mut config: CalderaConfig, rows: i64) -> (Caldera, TableId, TableId) {
        config.snapshot_policy = SnapshotPolicy::Manual;
        let mut builder = Caldera::builder(config);
        let fact = builder.create_table("fact", Schema::homogeneous("c", 3, AttrType::Int64), Layout::Dsm).unwrap();
        for k in 0..rows {
            builder.load(fact, k, &[Value::Int64(k), Value::Int64(k % 40), Value::Int64(1)]).unwrap();
        }
        let dim = builder.create_table("dim", Schema::homogeneous("d", 2, AttrType::Int64), Layout::Dsm).unwrap();
        for k in 0..40i64 {
            builder.load(dim, k, &[Value::Int64(k), Value::Int64(k % 4)]).unwrap();
        }
        (builder.start().unwrap(), fact, dim)
    }

    fn class_revenue_plan() -> OlapPlan {
        OlapPlan {
            predicates: vec![],
            join: Some(h2tap_common::JoinSpec {
                probe_column: 1,
                build_key: 0,
                // Keep keys 0..=19: half the fact rows join.
                build_predicates: vec![h2tap_common::Predicate::between(0, 0.0, 19.0)],
            }),
            group_by: Some(h2tap_common::PlanColumn::Build(1)),
            aggregates: vec![h2tap_common::AggExpr::SumColumns(vec![2]), h2tap_common::AggExpr::Count],
        }
    }

    #[test]
    fn join_plans_run_through_dispatch_and_agree_across_sites() {
        let (caldera, fact, dim) = engine_with_join_tables(CalderaConfig::with_workers(2), 2_000);
        let plan = class_revenue_plan();
        let gpu = caldera.run_olap_plan_on(fact, Some(dim), &plan, OlapTarget::Gpu).unwrap();
        let cpu = caldera.run_olap_plan_on(fact, Some(dim), &plan, OlapTarget::Cpu).unwrap();
        assert_eq!(gpu.site, OlapTarget::Gpu);
        assert_eq!(cpu.site, OlapTarget::Cpu);
        // Byte-identical groups through the production dispatch path.
        assert_eq!(gpu.groups, cpu.groups);
        assert_eq!(gpu.qualifying_rows, 1_000);
        // Classes 0..4 of the 20 surviving keys, 50 fact rows per key.
        assert_eq!(gpu.groups.len(), 4);
        for g in &gpu.groups {
            assert_eq!(g.rows, 250);
            assert_eq!(g.values[0], 250.0, "SUM(v) with v = 1 counts rows");
        }
        let stats = caldera.shutdown();
        assert_eq!(stats.olap_queries, 2);
        assert_eq!(stats.olap_queries_on(OlapTarget::Gpu), 1);
        assert_eq!(stats.olap_queries_on(OlapTarget::Cpu), 1);
    }

    #[test]
    fn join_plans_route_to_cpu_where_the_same_scan_routes_to_gpu() {
        // Host-resident (UVA) data, 8 archipelago cores: streaming 150k rows
        // favours the GPU, but the join's hash probes gather an interconnect
        // transaction per row — the planner must split the two.
        let mut config = CalderaConfig::with_workers(2);
        config.olap_cpu_cores = 8;
        let (caldera, fact, dim) = engine_with_join_tables(config, 150_000);
        let scan = ScanAggQuery::aggregate_only(h2tap_common::AggExpr::SumColumns(vec![1, 2]));
        let scan_out = caldera.run_olap(fact, &scan).unwrap();
        assert_eq!(scan_out.site, OlapTarget::Gpu);
        let plan_out = caldera.run_olap_plan(fact, Some(dim), &class_revenue_plan()).unwrap();
        assert_eq!(plan_out.site, OlapTarget::Cpu);
        let stats = caldera.shutdown();
        assert_eq!(stats.olap_queries_on(OlapTarget::Gpu), 1);
        assert_eq!(stats.olap_queries_on(OlapTarget::Cpu), 1);
    }

    #[test]
    fn plan_gpu_oom_falls_back_to_the_cpu_site() {
        let mut config = CalderaConfig::with_workers(2);
        config.olap_cpu_cores = 2;
        config.olap_device.placement = DataPlacement::DeviceResident;
        config.olap_device.gpu.mem_capacity_mib = 1; // ~5 MiB of fact columns
        let (caldera, fact, dim) = engine_with_join_tables(config, 200_000);
        let plan = class_revenue_plan();
        let out = caldera.run_olap_plan(fact, Some(dim), &plan).unwrap();
        assert_eq!(out.site, OlapTarget::Cpu);
        assert_eq!(out.qualifying_rows, 100_000);
        // Forcing the GPU surfaces the real error instead of falling back.
        assert!(caldera.run_olap_plan_on(fact, Some(dim), &plan, OlapTarget::Gpu).is_err());
        caldera.shutdown();
    }

    #[test]
    fn plan_snapshot_freshness_follows_the_policy() {
        let (caldera, fact, dim) = engine_with_join_tables(CalderaConfig::with_workers(2), 400);
        let plan = class_revenue_plan();
        let before = caldera.run_olap_plan(fact, Some(dim), &plan).unwrap();
        let sum_before: f64 = before.groups.iter().map(|g| g.values[0]).sum();
        caldera
            .execute_txn(Arc::new(move |ctx| {
                let mut rec = ctx.read_for_update(fact, 0)?;
                rec[2] = Value::Int64(100);
                ctx.update(fact, 0, rec)
            }))
            .unwrap();
        // Manual policy: stale until an explicit refresh.
        let stale = caldera.run_olap_plan(fact, Some(dim), &plan).unwrap();
        assert_eq!(stale.groups.iter().map(|g| g.values[0]).sum::<f64>(), sum_before);
        caldera.refresh_snapshot().unwrap();
        let fresh = caldera.run_olap_plan(fact, Some(dim), &plan).unwrap();
        assert_eq!(fresh.groups.iter().map(|g| g.values[0]).sum::<f64>(), sum_before + 99.0);
        caldera.shutdown();
    }

    #[test]
    fn plan_cache_is_shared_across_sites_and_invalidated_on_refresh() {
        let (caldera, t) = engine_with_rows(2, 5_000, SnapshotPolicy::EveryN { queries: 100 });
        let q = ScanAggQuery {
            predicates: vec![h2tap_common::Predicate::between(0, 0.0, 2_000.0)],
            aggregate: AggExpr::SumColumns(vec![1]),
        };
        // First dispatch (GPU) materialises; the forced CPU repeat of the
        // same snapshot + column set must reuse the same derived state.
        let gpu = caldera.run_olap_on(t, &q, OlapTarget::Gpu).unwrap();
        let after_first = caldera.stats().plan_cache;
        assert_eq!(after_first.column_misses, 1);
        assert_eq!(after_first.column_hits, 0);
        let cpu = caldera.run_olap_on(t, &q, OlapTarget::Cpu).unwrap();
        assert_eq!(gpu.value.to_bits(), cpu.value.to_bits());
        let after_second = caldera.stats().plan_cache;
        assert_eq!(after_second.column_misses, 1, "the CPU site reuses the GPU dispatch's materialisation");
        assert_eq!(after_second.column_hits, 1);
        // A transaction plus an explicit refresh: the stale derivation is
        // dropped and the fresh snapshot recomputes — and sees the update.
        caldera
            .execute_txn(Arc::new(move |ctx| {
                let mut rec = ctx.read_for_update(t, 7)?;
                rec[1] = Value::Int64(rec[1].as_i64().unwrap() + 41);
                ctx.update(t, 7, rec)
            }))
            .unwrap();
        caldera.refresh_snapshot().unwrap();
        let fresh = caldera.run_olap_on(t, &q, OlapTarget::Cpu).unwrap();
        assert_eq!(fresh.value, cpu.value + 41.0, "a stale cached materialisation must never be served");
        let stats = caldera.shutdown();
        assert!(stats.plan_cache.invalidations >= 1);
        assert_eq!(stats.plan_cache.column_misses, 2);
        assert_eq!(stats.plan_cache.hit_rate(), Some(1.0 / 3.0));
    }

    #[test]
    fn plan_cache_budget_flows_from_config_to_stats() {
        let q = ScanAggQuery {
            predicates: vec![h2tap_common::Predicate::between(0, 0.0, 2_000.0)],
            aggregate: AggExpr::SumColumns(vec![1]),
        };
        // A budget comfortably above one entry: the repeat hits and the
        // occupancy stays within the configured bound.
        let mut config = CalderaConfig::with_workers(2);
        config.snapshot_policy = SnapshotPolicy::EveryN { queries: 100 };
        config.olap_plan_cache_budget_bytes = Some(1 << 20);
        let (caldera, t) = engine_with_config(config, 5_000);
        caldera.run_olap(t, &q).unwrap();
        caldera.run_olap(t, &q).unwrap();
        let cache = caldera.stats().plan_cache;
        assert_eq!(cache.budget_bytes, Some(1 << 20));
        assert_eq!(cache.column_misses, 1);
        assert_eq!(cache.column_hits, 1);
        assert!(cache.occupancy_bytes > 0);
        assert!(cache.occupancy_bytes <= 1 << 20);
        caldera.shutdown();
        // A budget too small for even one entry: every query recomputes,
        // nothing is retained, and no futile eviction is counted.
        let mut config = CalderaConfig::with_workers(2);
        config.snapshot_policy = SnapshotPolicy::EveryN { queries: 100 };
        config.olap_plan_cache_budget_bytes = Some(64);
        let (caldera, t) = engine_with_config(config, 5_000);
        caldera.run_olap(t, &q).unwrap();
        caldera.run_olap(t, &q).unwrap();
        let cache = caldera.stats().plan_cache;
        assert_eq!(cache.budget_bytes, Some(64));
        assert_eq!(cache.column_misses, 2);
        assert_eq!(cache.column_hits, 0);
        assert_eq!(cache.occupancy_bytes, 0);
        assert_eq!(cache.evictions, 0);
        caldera.shutdown();
    }

    #[test]
    fn calibration_recalibrates_wrong_seeds_from_forced_runs() {
        use h2tap_scheduler::CostModel;
        // Seed the placement model with a 2x-too-high per-tuple cost; the
        // sites themselves run with the true constants, so every dispatch
        // produces a corrective observation.
        let mut config = CalderaConfig::with_workers(2);
        config.olap_cpu_cores = 8;
        config.snapshot_policy = SnapshotPolicy::EveryN { queries: 1000 };
        config.cost_model_seed = Some(CostModel { cpu_per_tuple_ns: 186.0, ..CostModel::default() });
        let (caldera, t) = engine_with_config(config, 100_000);
        assert_eq!(caldera.cost_model().cpu_per_tuple_ns, 186.0);
        let q = ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![0, 1]));
        for _ in 0..40 {
            caldera.run_olap_on(t, &q, OlapTarget::Cpu).unwrap();
        }
        let model = caldera.cost_model();
        assert!(
            (model.cpu_per_tuple_ns - 93.0).abs() / 93.0 < 0.05,
            "model should converge to the site's true 93 ns/tuple, got {}",
            model.cpu_per_tuple_ns
        );
        let stats = caldera.shutdown();
        assert_eq!(stats.calibration.site(OlapTarget::Cpu).unwrap().observations, 40);
        assert_eq!(stats.calibration.site(OlapTarget::Gpu).unwrap().observations, 0);
        let err = stats.prediction_error_on(OlapTarget::Cpu).unwrap();
        assert!(err < 0.10, "steady-state CPU prediction error {err} should be under 10%");
        // Forced runs fed calibration but never recursed into placement: all
        // 40 queries ran exactly where they were forced.
        assert_eq!(stats.olap_queries_on(OlapTarget::Cpu), 40);
        assert_eq!(stats.olap_queries_on(OlapTarget::Gpu), 0);
    }

    #[test]
    fn calibration_can_be_disabled() {
        use h2tap_scheduler::{CalibrationConfig, CostModel};
        let mut config = CalderaConfig::with_workers(2);
        config.olap_cpu_cores = 4;
        config.calibration = CalibrationConfig { enabled: false, ..CalibrationConfig::default() };
        config.cost_model_seed = Some(CostModel { cpu_per_tuple_ns: 186.0, ..CostModel::default() });
        let (caldera, t) = engine_with_config(config, 50_000);
        let q = ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![1]));
        for _ in 0..5 {
            caldera.run_olap_on(t, &q, OlapTarget::Cpu).unwrap();
        }
        // The model is frozen, but the error is still measured.
        assert_eq!(caldera.cost_model().cpu_per_tuple_ns, 186.0);
        let report = caldera.calibration_report();
        assert!(!report.enabled);
        assert_eq!(report.site(OlapTarget::Cpu).unwrap().observations, 5);
        assert!(report.site(OlapTarget::Cpu).unwrap().mean_rel_error > 0.0);
        caldera.shutdown();
    }

    #[test]
    fn migration_policy_shifts_cores_when_the_cpu_side_is_saturated() {
        use h2tap_scheduler::{CalibrationConfig, CostModel, SaturationMigrationPolicy};
        // Freeze calibration on a model that predicts the CPU side far too
        // fast (zero per-tuple work, absurd bandwidth): every CPU query runs
        // much slower than predicted — sustained positive signed error, the
        // saturation signal.
        let mut config = CalderaConfig::with_workers(6);
        config.olap_cpu_cores = 2;
        config.snapshot_policy = SnapshotPolicy::EveryN { queries: 1000 };
        config.calibration = CalibrationConfig { enabled: false, ..CalibrationConfig::default() };
        config.cost_model_seed =
            Some(CostModel { cpu_per_tuple_ns: 0.0, cpu_core_bandwidth_gbps: 1e4, ..CostModel::default() });
        let (caldera, t) = engine_with_config(config, 100_000);
        caldera.set_migration_policy(Some(Box::new(
            SaturationMigrationPolicy::default().with_threshold(0.2).with_min_observations(2).with_cooldown(2),
        )));
        let before = caldera.scheduler().archipelago(ArchipelagoKind::DataParallel).core_count();
        assert_eq!(before, 2);
        let q = ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![0, 1]));
        for _ in 0..10 {
            caldera.run_olap_on(t, &q, OlapTarget::Cpu).unwrap();
        }
        let data_cores = caldera.scheduler().archipelago(ArchipelagoKind::DataParallel).core_count();
        let task_cores = caldera.scheduler().archipelago(ArchipelagoKind::TaskParallel).core_count();
        assert!(data_cores > before, "sustained error must pull cores into the data-parallel archipelago");
        assert!(task_cores >= 1, "the task-parallel archipelago is never emptied");
        assert_eq!(data_cores + task_cores, 8, "cores move, they do not appear or vanish");
        caldera.shutdown();
    }

    #[test]
    fn cpu_queries_see_migrated_cores() {
        // Start with 2 OLAP CPU cores, then migrate 6 more from the (8-core)
        // task-parallel archipelago: the same CPU query must get faster.
        let mut config = CalderaConfig::with_workers(8);
        config.olap_cpu_cores = 2;
        config.snapshot_policy = SnapshotPolicy::EveryN { queries: 100 };
        let (caldera, t) = engine_with_config(config, 50_000);
        let q = ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![0, 1]));
        let before = caldera.run_olap_on(t, &q, OlapTarget::Cpu).unwrap();
        for core in 0..6 {
            caldera
                .scheduler()
                .migrate_core(core, ArchipelagoKind::TaskParallel, ArchipelagoKind::DataParallel)
                .unwrap();
        }
        let after = caldera.run_olap_on(t, &q, OlapTarget::Cpu).unwrap();
        assert_eq!(before.value, after.value);
        assert!(after.time < before.time, "8 cores {} should beat 2 cores {}", after.time, before.time);
        caldera.shutdown();
    }

    #[test]
    fn caldera_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Caldera>();
    }

    #[test]
    fn zero_workers_is_a_config_error_not_a_panic() {
        let mut builder = Caldera::builder(CalderaConfig::with_workers(0));
        builder.create_table("t", Schema::homogeneous("c", 2, AttrType::Int64), Layout::Dsm).unwrap();
        // The runtime refuses to start (there is nowhere to route
        // transactions) instead of panicking later in `execute_txn`.
        assert!(matches!(builder.start(), Err(H2Error::Config(_))));
    }

    #[test]
    fn refresh_propagates_a_failed_snapshot_release() {
        let (caldera, t) = engine_with_rows(2, 10, SnapshotPolicy::Manual);
        let q = ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![1]));
        assert_eq!(caldera.run_olap(t, &q).unwrap().value, 10.0);
        // Release the engine's snapshot behind its back: the refresh's own
        // release now fails, and the error must surface, not vanish.
        let snapshot = caldera.current_snapshot().expect("a query ran, so a snapshot exists");
        caldera.database().release_snapshot(&snapshot).unwrap();
        assert!(matches!(caldera.refresh_snapshot(), Err(H2Error::UnknownSnapshot(_))));
        // Recovery is clean: the failed refresh left no snapshot behind, so
        // the next query takes a fresh one and answers correctly.
        assert_eq!(caldera.run_olap(t, &q).unwrap().value, 10.0);
        let stats = caldera.shutdown();
        assert_eq!(stats.snapshot_release_failures, 0);
    }

    #[test]
    fn shutdown_counts_a_failed_snapshot_release() {
        let (caldera, t) = engine_with_rows(2, 10, SnapshotPolicy::Manual);
        let q = ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![1]));
        caldera.run_olap(t, &q).unwrap();
        let snapshot = caldera.current_snapshot().unwrap();
        caldera.database().release_snapshot(&snapshot).unwrap();
        let stats = caldera.shutdown();
        assert_eq!(stats.snapshot_release_failures, 1, "a swallowed release failure is an accounting leak");
    }

    #[test]
    fn shutdown_drains_submitted_transactions_before_counting() {
        let (caldera, t) = engine_with_rows(2, 10, SnapshotPolicy::Manual);
        // Fire-and-forget submissions against a partition-local key (2 lives
        // on partition 0 under the modulo partitioner): the workers may
        // still be draining these when shutdown begins.
        let mut receivers = Vec::new();
        for _ in 0..50 {
            receivers.push(
                caldera
                    .oltp()
                    .submit(
                        PartitionId(0),
                        Arc::new(move |ctx| {
                            let mut rec = ctx.read_for_update(t, 2)?;
                            rec[1] = Value::Int64(rec[1].as_i64().unwrap() + 1);
                            ctx.update(t, 2, rec)
                        }),
                    )
                    .unwrap(),
            );
        }
        let stats = caldera.shutdown();
        assert_eq!(
            stats.oltp.committed, 50,
            "shutdown must stop the workers before capturing statistics, so every drained commit is counted"
        );
        drop(receivers);
    }

    #[test]
    fn refused_migrations_do_not_burn_the_policy_cooldown() {
        use h2tap_scheduler::CoreMigration;
        use std::sync::atomic::AtomicU64;

        /// Always recommends pulling a core out of the task-parallel
        /// archipelago — which the scheduler refuses when that would empty
        /// it — and counts how often the engine commits the move.
        struct AlwaysPull {
            recommendations: Arc<AtomicU64>,
            commits: Arc<AtomicU64>,
        }
        impl CoreMigrationPolicy for AlwaysPull {
            fn recommend(
                &mut self,
                _report: &CalibrationReport,
                _data_parallel_cores: u32,
                _task_parallel_cores: u32,
            ) -> Option<CoreMigration> {
                self.recommendations.fetch_add(1, Ordering::SeqCst);
                Some(CoreMigration { from: ArchipelagoKind::TaskParallel, to: ArchipelagoKind::DataParallel })
            }
            fn commit(&mut self, _report: &CalibrationReport) {
                self.commits.fetch_add(1, Ordering::SeqCst);
            }
        }

        // One OLTP worker: the task-parallel archipelago owns exactly one
        // core, so every recommended pull is refused by the scheduler.
        let mut config = CalderaConfig::with_workers(1);
        config.snapshot_policy = SnapshotPolicy::EveryN { queries: 1000 };
        let (caldera, t) = engine_with_config(config, 1_000);
        let recommendations = Arc::new(AtomicU64::new(0));
        let commits = Arc::new(AtomicU64::new(0));
        caldera.set_migration_policy(Some(Box::new(AlwaysPull {
            recommendations: Arc::clone(&recommendations),
            commits: Arc::clone(&commits),
        })));
        let q = ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![1]));
        for _ in 0..3 {
            caldera.run_olap_on(t, &q, OlapTarget::Cpu).unwrap();
        }
        assert_eq!(recommendations.load(Ordering::SeqCst), 3, "the policy is consulted after every dispatch");
        assert_eq!(commits.load(Ordering::SeqCst), 0, "a refused migration must not commit the policy's state");
        assert_eq!(caldera.scheduler().archipelago(ArchipelagoKind::TaskParallel).core_count(), 1);
        caldera.shutdown();
    }

    #[test]
    fn admission_budget_bounds_and_counts_concurrent_queries() {
        const THREADS: usize = 4;
        const PER_THREAD: usize = 8;
        let mut config = CalderaConfig::with_workers(2);
        config.olap_cpu_cores = 4;
        config.snapshot_policy = SnapshotPolicy::EveryN { queries: 100_000 };
        config.olap_admission_in_flight = Some(1);
        let (caldera, t) = engine_with_config(config, 100_000);
        let q = ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![0, 1]));
        let serial = caldera.run_olap_on(t, &q, OlapTarget::Cpu).unwrap().value;
        let caldera = Arc::new(caldera);
        let barrier = Arc::new(std::sync::Barrier::new(THREADS));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let caldera = Arc::clone(&caldera);
                let barrier = Arc::clone(&barrier);
                let q = q.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    for _ in 0..PER_THREAD {
                        let out = caldera.run_olap_on(t, &q, OlapTarget::Cpu).unwrap();
                        assert_eq!(out.value.to_bits(), serial.to_bits(), "concurrent answers must stay exact");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let Ok(caldera) = Arc::try_unwrap(caldera) else { panic!("all clients joined") };
        let stats = caldera.shutdown();
        let cpu = stats.olap_sites.iter().find(|s| s.target == OlapTarget::Cpu).unwrap();
        assert_eq!(cpu.admission.admitted, (THREADS * PER_THREAD + 1) as u64);
        assert!(cpu.admission.queued > 0, "4 clients against a budget of 1 must have queued");
        assert_eq!(cpu.admission.in_flight, 0);
        assert_eq!(stats.olap_queries, (THREADS * PER_THREAD + 1) as u64);
    }

    /// Runs the same mixed workload (scans on both targets' favourite
    /// shapes) and returns (result bits, final stats).
    fn fault_comparison_run(fault_plan: Option<h2tap_gpu_sim::FaultPlan>) -> (Vec<u64>, HtapStats) {
        let mut config = CalderaConfig::with_workers(2);
        config.olap_cpu_cores = 8;
        config.olap_device.placement = DataPlacement::DeviceResident;
        config.snapshot_policy = SnapshotPolicy::EveryN { queries: 100 };
        config.fault_plan = fault_plan;
        let (caldera, t) = engine_with_config(config, 50_000);
        let q = ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![0, 1]));
        let mut bits = Vec::new();
        for _ in 0..6 {
            bits.push(caldera.run_olap(t, &q).unwrap().value.to_bits());
        }
        (bits, caldera.shutdown())
    }

    #[test]
    fn quiet_fault_plan_is_byte_identical_to_no_plan() {
        // A zero-rate plan must be observationally identical to no plan:
        // same result bits, same routing, same simulated times, and not a
        // single resilience counter moved.
        let (none_bits, none_stats) = fault_comparison_run(None);
        let (quiet_bits, quiet_stats) = fault_comparison_run(Some(h2tap_gpu_sim::FaultPlan::quiet(0xC1DA)));
        assert_eq!(none_bits, quiet_bits);
        assert_eq!(none_stats.olap_queries, quiet_stats.olap_queries);
        assert_eq!(none_stats.olap_time, quiet_stats.olap_time);
        assert_eq!(none_stats.snapshots_taken, quiet_stats.snapshots_taken);
        for (a, b) in none_stats.olap_sites.iter().zip(quiet_stats.olap_sites.iter()) {
            assert_eq!(a.target, b.target);
            assert_eq!(a.queries, b.queries);
            assert_eq!(a.time, b.time);
        }
        assert_eq!(quiet_stats.resilience, ResilienceStats::default());
        assert_eq!(none_stats.resilience, ResilienceStats::default());
    }

    #[test]
    fn transient_storm_retries_keep_answers_exact() {
        let mut config = CalderaConfig::with_workers(2);
        config.olap_cpu_cores = 8;
        config.olap_device.placement = DataPlacement::DeviceResident;
        config.snapshot_policy = SnapshotPolicy::EveryN { queries: 1_000 };
        config.olap_retry_backoff = Duration::ZERO;
        let mut plan = h2tap_gpu_sim::FaultPlan::transient_storm(7);
        plan.transient_kernel_rate = 0.35; // storm hard enough to force retries
        config.fault_plan = Some(plan);
        let (caldera, t) = engine_with_config(config, 200_000);
        let q = ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![1]));
        for _ in 0..25 {
            let out = caldera.run_olap(t, &q).unwrap();
            assert_eq!(out.value.to_bits(), 200_000.0_f64.to_bits(), "a retried or re-routed query must stay exact");
        }
        let stats = caldera.shutdown();
        assert!(stats.resilience.faults > 0, "the storm must actually fire");
        assert!(stats.resilience.retries > 0, "transient faults must be retried in place");
        assert_eq!(stats.olap_queries, 25);
        assert_eq!(stats.olap_sites.iter().map(|s| s.queries).sum::<u64>(), 25, "no query may be lost to a fault");
    }

    #[test]
    fn mid_stream_device_loss_quarantines_and_reroutes() {
        let mut config = CalderaConfig::with_workers(2);
        config.olap_cpu_cores = 8;
        config.olap_device.placement = DataPlacement::DeviceResident;
        config.snapshot_policy = SnapshotPolicy::EveryN { queries: 1_000 };
        config.olap_retry_backoff = Duration::ZERO;
        let mut plan = h2tap_gpu_sim::FaultPlan::quiet(11);
        plan.device_loss_at = Some(DeviceLossPoint { site: "gpu".into(), device: 0, launch: 4 });
        config.fault_plan = Some(plan);
        let (caldera, t) = engine_with_config(config, 200_000);
        let q = ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![1]));
        // Every query — before the loss, at the loss, and long after it —
        // must succeed with the exact answer; the ladder absorbs the dead
        // device (including failed half-open probes after the backoff).
        for _ in 0..30 {
            let out = caldera.run_olap(t, &q).unwrap();
            assert_eq!(out.value.to_bits(), 200_000.0_f64.to_bits());
        }
        let stats = caldera.shutdown();
        let gpu = stats.olap_sites.iter().find(|s| s.target == OlapTarget::Gpu).unwrap();
        assert!(gpu.health.persistent_failures >= 1, "the loss must be recorded as persistent");
        assert!(gpu.health.quarantines >= 1, "a dead device must trip the breaker");
        assert_ne!(gpu.health.state, SiteHealthState::Closed, "a still-dead device must not be re-admitted");
        assert!(stats.resilience.fallbacks >= 1, "queries must re-route off the dead device");
        assert!(stats.olap_queries_on(OlapTarget::Gpu) >= 1, "the device served queries before it died");
        assert!(stats.olap_queries_on(OlapTarget::Cpu) >= 1, "the CPU site must absorb the re-routed queries");
        assert_eq!(stats.olap_queries, 30);
    }

    #[test]
    fn query_deadline_cuts_the_retry_ladder() {
        let mut config = CalderaConfig::with_workers(2);
        config.olap_cpu_cores = 2;
        config.olap_retry_backoff = Duration::ZERO;
        config.olap_query_deadline = Some(Duration::ZERO);
        let mut plan = h2tap_gpu_sim::FaultPlan::quiet(3);
        plan.transient_kernel_rate = 1.0; // every attempt faults
        config.fault_plan = Some(plan);
        let (caldera, t) = engine_with_config(config, 1_000);
        let q = ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![1]));
        let err = caldera.run_olap_on(t, &q, OlapTarget::Gpu).unwrap_err();
        assert!(matches!(err, H2Error::Timeout(_)), "expected a deadline timeout, got {err:?}");
        let stats = caldera.shutdown();
        assert_eq!(stats.resilience.deadline_timeouts, 1);
        assert!(stats.resilience.faults >= 1);
    }

    #[test]
    fn fault_spans_and_metrics_surface_through_obs() {
        let mut config = CalderaConfig::with_workers(2);
        config.olap_cpu_cores = 8;
        config.olap_device.placement = DataPlacement::DeviceResident;
        config.snapshot_policy = SnapshotPolicy::EveryN { queries: 1_000 };
        config.olap_retry_backoff = Duration::ZERO;
        config.observability.tracing = true;
        let mut plan = h2tap_gpu_sim::FaultPlan::quiet(5);
        plan.device_loss_at = Some(DeviceLossPoint { site: "gpu".into(), device: 0, launch: 2 });
        config.fault_plan = Some(plan);
        let (caldera, t) = engine_with_config(config, 200_000);
        let q = ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![1]));
        for _ in 0..10 {
            caldera.run_olap(t, &q).unwrap();
        }
        let spans = caldera.trace_spans();
        assert!(spans.iter().any(|s| s.event.kind == SpanKind::Fault), "faults must leave spans");
        assert!(spans.iter().any(|s| s.event.kind == SpanKind::Fallback), "fallbacks must leave spans");
        assert!(spans.iter().any(|s| s.event.kind == SpanKind::Quarantine), "the quarantine must leave a span");
        let stats = caldera.shutdown();
        assert!(stats.metrics.counter("olap.faults.device_lost").is_some_and(|v| v >= 1));
        assert!(stats.metrics.counter("olap.faults.fallbacks").is_some_and(|v| v >= 1));
        assert!(stats.metrics.counter("olap.site_health.quarantines.gpu").is_some_and(|v| v >= 1));
    }
}
