//! The running Caldera engine: both archipelagos over one shared database.

use crate::config::CalderaConfig;
use h2tap_common::{PartitionId, Result, ScanAggQuery, SimDuration, TableId};
use h2tap_olap::{GpuOlapEngine, OlapOutcome, RegisteredTable, SnapshotPolicy};
use h2tap_oltp::{BenchmarkWindow, OltpRuntime, OltpStats, TxnProc};
use h2tap_scheduler::{ArchipelagoKind, Scheduler};
use h2tap_storage::{CowStats, Database, Snapshot};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Combined HTAP statistics for experiment reporting.
#[derive(Debug, Clone, Default)]
pub struct HtapStats {
    /// OLTP-side counters.
    pub oltp: OltpStats,
    /// Copy-on-write / snapshot GC counters.
    pub cow: CowStats,
    /// Analytical queries executed.
    pub olap_queries: u64,
    /// Total simulated OLAP execution time.
    pub olap_time: SimDuration,
    /// Snapshots taken by the OLAP path.
    pub snapshots_taken: u64,
}

/// State of the data-parallel archipelago's query loop.
struct OlapState {
    engine: GpuOlapEngine,
    snapshot: Option<Arc<Snapshot>>,
    registered: HashMap<TableId, RegisteredTable>,
    query_index: u64,
    snapshots_taken: u64,
    total_time: SimDuration,
}

/// The running engine.
pub struct Caldera {
    config: CalderaConfig,
    db: Arc<Database>,
    oltp: OltpRuntime,
    olap: Mutex<OlapState>,
    scheduler: Scheduler,
    next_home: AtomicU64,
}

impl Caldera {
    /// Begins building an engine.
    pub fn builder(config: CalderaConfig) -> crate::builder::CalderaBuilder {
        crate::builder::CalderaBuilder::new(config)
    }

    pub(crate) fn assemble(
        config: CalderaConfig,
        db: Arc<Database>,
        oltp: OltpRuntime,
        olap: GpuOlapEngine,
        scheduler: Scheduler,
    ) -> Self {
        Self {
            config,
            db,
            oltp,
            olap: Mutex::new(OlapState {
                engine: olap,
                snapshot: None,
                registered: HashMap::new(),
                query_index: 0,
                snapshots_taken: 0,
                total_time: SimDuration::ZERO,
            }),
            scheduler,
            next_home: AtomicU64::new(0),
        }
    }

    /// The shared-memory database.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The OLTP runtime (task-parallel archipelago).
    pub fn oltp(&self) -> &OltpRuntime {
        &self.oltp
    }

    /// The archipelago scheduler.
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// The configured snapshot policy.
    pub fn snapshot_policy(&self) -> SnapshotPolicy {
        self.config.snapshot_policy
    }

    /// Executes a transaction on an explicitly chosen home worker.
    pub fn execute_txn_on(&self, home: PartitionId, proc: TxnProc) -> Result<()> {
        self.scheduler.record_dispatch(ArchipelagoKind::TaskParallel, 1.0);
        self.oltp.execute(home, proc)
    }

    /// Executes a transaction, choosing a home worker round-robin ("an
    /// incoming transaction can be scheduled to run on any thread").
    pub fn execute_txn(&self, proc: TxnProc) -> Result<()> {
        let home = PartitionId((self.next_home.fetch_add(1, Ordering::Relaxed) % self.oltp.workers() as u64) as u32);
        self.execute_txn_on(home, proc)
    }

    /// Runs the OLTP benchmark generator (if one was configured) for
    /// `window` and returns throughput.
    pub fn run_oltp_window(&self, window: Duration) -> Result<BenchmarkWindow> {
        self.oltp.run_for(window)
    }

    /// Takes a fresh snapshot immediately, releasing the previous OLAP
    /// snapshot (manual freshness control).
    pub fn refresh_snapshot(&self) -> Result<()> {
        let mut olap = self.olap.lock();
        Self::refresh_locked(&self.db, &mut olap)
    }

    fn refresh_locked(db: &Arc<Database>, olap: &mut OlapState) -> Result<()> {
        if let Some(old) = olap.snapshot.take() {
            let _ = db.release_snapshot(&old);
        }
        olap.engine.reset_tables();
        olap.registered.clear();
        olap.snapshot = Some(db.snapshot());
        olap.snapshots_taken += 1;
        Ok(())
    }

    /// Runs an analytical query against `table` on the data-parallel
    /// archipelago, refreshing the snapshot according to the configured
    /// [`SnapshotPolicy`].
    pub fn run_olap(&self, table: TableId, query: &ScanAggQuery) -> Result<OlapOutcome> {
        self.scheduler.record_dispatch(ArchipelagoKind::DataParallel, 1.0);
        let mut olap = self.olap.lock();
        let policy = self.config.snapshot_policy;
        if olap.snapshot.is_none() || policy.should_refresh(olap.query_index) {
            Self::refresh_locked(&self.db, &mut olap)?;
        }
        olap.query_index += 1;

        let snapshot = Arc::clone(olap.snapshot.as_ref().expect("snapshot present after refresh"));
        let meta = self.db.table_meta(table)?;
        let frozen = snapshot.table(table)?;
        let handle = match olap.registered.get(&table) {
            Some(h) => *h,
            None => {
                let h = olap.engine.register_table(frozen, &meta.name)?;
                olap.registered.insert(table, h);
                h
            }
        };
        let outcome = olap.engine.execute(handle, frozen, query)?;
        olap.total_time += outcome.time;
        Ok(outcome)
    }

    /// Combined statistics across both archipelagos.
    pub fn stats(&self) -> HtapStats {
        let olap = self.olap.lock();
        HtapStats {
            oltp: self.oltp.stats(),
            cow: self.db.telemetry(),
            olap_queries: olap.query_index,
            olap_time: olap.total_time,
            snapshots_taken: olap.snapshots_taken,
        }
    }

    /// Stops the OLTP workers, releases the OLAP snapshot and returns final
    /// statistics.
    pub fn shutdown(self) -> HtapStats {
        let stats = self.stats();
        {
            let mut olap = self.olap.lock();
            if let Some(snapshot) = olap.snapshot.take() {
                let _ = self.db.release_snapshot(&snapshot);
            }
        }
        self.oltp.shutdown();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CalderaConfig;
    use h2tap_common::{AggExpr, AttrType, Schema, Value};
    use h2tap_storage::Layout;

    fn engine_with_rows(workers: usize, rows: i64, policy: SnapshotPolicy) -> (Caldera, TableId) {
        let mut config = CalderaConfig::with_workers(workers);
        config.snapshot_policy = policy;
        let mut builder = Caldera::builder(config);
        let t = builder
            .create_table("accounts", Schema::homogeneous("c", 2, AttrType::Int64), Layout::PAPER_PAX)
            .unwrap();
        for k in 0..rows {
            builder.load(t, k, &[Value::Int64(k), Value::Int64(1)]).unwrap();
        }
        (builder.start().unwrap(), t)
    }

    #[test]
    fn htap_oltp_and_olap_coexist() {
        let (caldera, t) = engine_with_rows(2, 100, SnapshotPolicy::PerQuery);
        // OLAP before any update: sum of col1 = 100.
        let q = ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![1]));
        let before = caldera.run_olap(t, &q).unwrap();
        assert_eq!(before.value, 100.0);
        // A transaction bumps one record.
        caldera
            .execute_txn(Arc::new(move |ctx| {
                let mut rec = ctx.read_for_update(t, 7)?;
                rec[1] = Value::Int64(rec[1].as_i64().unwrap() + 9);
                ctx.update(t, 7, rec)
            }))
            .unwrap();
        // PerQuery policy: the next OLAP query sees the update.
        let after = caldera.run_olap(t, &q).unwrap();
        assert_eq!(after.value, 109.0);
        let stats = caldera.shutdown();
        assert_eq!(stats.oltp.committed, 1);
        assert_eq!(stats.olap_queries, 2);
        assert_eq!(stats.snapshots_taken, 2);
        assert!(stats.olap_time > SimDuration::ZERO);
    }

    #[test]
    fn shared_snapshots_trade_freshness_for_fewer_refreshes() {
        let (caldera, t) = engine_with_rows(2, 50, SnapshotPolicy::EveryN { queries: 10 });
        let q = ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![1]));
        let first = caldera.run_olap(t, &q).unwrap();
        assert_eq!(first.value, 50.0);
        caldera
            .execute_txn(Arc::new(move |ctx| {
                let mut rec = ctx.read_for_update(t, 0)?;
                rec[1] = Value::Int64(100);
                ctx.update(t, 0, rec)
            }))
            .unwrap();
        // Still within the same snapshot window: the update is not visible.
        let stale = caldera.run_olap(t, &q).unwrap();
        assert_eq!(stale.value, 50.0);
        let stats = caldera.shutdown();
        assert_eq!(stats.snapshots_taken, 1);
        // The update did trigger copy-on-write against the shared snapshot.
        assert!(stats.cow.pages_copied >= 1);
    }

    #[test]
    fn manual_policy_requires_explicit_refresh() {
        let (caldera, t) = engine_with_rows(2, 10, SnapshotPolicy::Manual);
        let q = ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![1]));
        // First query takes the initial snapshot even under Manual.
        assert_eq!(caldera.run_olap(t, &q).unwrap().value, 10.0);
        caldera
            .execute_txn(Arc::new(move |ctx| {
                let mut rec = ctx.read_for_update(t, 3)?;
                rec[1] = Value::Int64(5);
                ctx.update(t, 3, rec)
            }))
            .unwrap();
        assert_eq!(caldera.run_olap(t, &q).unwrap().value, 10.0, "stale until refreshed");
        caldera.refresh_snapshot().unwrap();
        assert_eq!(caldera.run_olap(t, &q).unwrap().value, 14.0);
        caldera.shutdown();
    }

    #[test]
    fn round_robin_hosting_spreads_transactions() {
        let (caldera, t) = engine_with_rows(4, 40, SnapshotPolicy::PerQuery);
        for _ in 0..8 {
            caldera.execute_txn(Arc::new(move |ctx| ctx.read(t, 1).map(|_| ()))).unwrap();
        }
        let stats = caldera.shutdown();
        assert_eq!(stats.oltp.committed, 8);
        // Three of every four transactions were hosted away from key 1's
        // partition and had to use the message protocol.
        assert!(stats.oltp.remote_requests >= 4);
    }
}
