//! Bounded, FIFO admission to an execution site.
//!
//! Every OLAP dispatch acquires an [`AdmissionPermit`] from its target
//! site's [`AdmissionGate`] before executing and releases it when the
//! execution finishes (RAII, so error paths — notably the GPU-OOM → CPU
//! fallback — free the failed site's slot before competing for another).
//! A gate with a budget caps the queries a site executes at once; the
//! excess waits in strict arrival order, so a burst of cheap queries
//! cannot starve an earlier expensive one. A gate without a budget only
//! counts traffic.

use parking_lot::Mutex;
use std::sync::{Condvar, PoisonError};

/// Point-in-time admission counters of one gate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Queries admitted to the site (every execution acquires exactly one
    /// permit, so this equals the site's execution attempts).
    pub admitted: u64,
    /// Admissions that had to wait because the in-flight budget was
    /// exhausted (or an earlier arrival was still waiting).
    pub queued: u64,
    /// Permits currently held.
    pub in_flight: u32,
}

#[derive(Debug, Default)]
struct GateState {
    in_flight: u32,
    /// Next ticket to hand out. Tickets are served strictly in order:
    /// `now_serving` counts tickets admitted so far, so a ticket enters
    /// exactly when every earlier ticket has been admitted and the budget
    /// has room.
    next_ticket: u64,
    now_serving: u64,
    admitted: u64,
    queued: u64,
}

/// A FIFO ticket gate bounding in-flight executions on one site.
#[derive(Debug)]
pub struct AdmissionGate {
    state: Mutex<GateState>,
    cv: Condvar,
    budget: Option<u32>,
}

impl AdmissionGate {
    /// A gate admitting at most `budget` concurrent executions; `None` is
    /// unbounded (counting only). A budget of zero would deadlock every
    /// caller and is clamped to one.
    pub fn new(budget: Option<u32>) -> Self {
        Self { state: Mutex::new(GateState::default()), cv: Condvar::new(), budget: budget.map(|b| b.max(1)) }
    }

    /// The configured in-flight budget (`None` = unbounded).
    pub fn budget(&self) -> Option<u32> {
        self.budget
    }

    /// Blocks until the site has room, in strict arrival order, and returns
    /// the RAII permit that occupies the slot.
    pub fn admit(&self) -> AdmissionPermit<'_> {
        let mut state = self.state.lock();
        let Some(budget) = self.budget else {
            state.admitted += 1;
            state.in_flight += 1;
            return AdmissionPermit { gate: self };
        };
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        if ticket != state.now_serving || state.in_flight >= budget {
            state.queued += 1;
            while ticket != state.now_serving || state.in_flight >= budget {
                state = self.cv.wait(state).unwrap_or_else(PoisonError::into_inner);
            }
        }
        state.now_serving += 1;
        state.in_flight += 1;
        state.admitted += 1;
        AdmissionPermit { gate: self }
    }

    fn release(&self) {
        let mut state = self.state.lock();
        state.in_flight = state.in_flight.saturating_sub(1);
        drop(state);
        self.cv.notify_all();
    }

    /// Current counters.
    pub fn stats(&self) -> AdmissionStats {
        let state = self.state.lock();
        AdmissionStats { admitted: state.admitted, queued: state.queued, in_flight: state.in_flight }
    }
}

/// Occupancy of one admission slot; dropping it frees the slot and wakes
/// the queue.
#[must_use = "dropping the permit immediately releases the admission slot"]
pub struct AdmissionPermit<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.gate.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::{Arc, Barrier};

    #[test]
    fn unbounded_gate_counts_but_never_queues() {
        let gate = AdmissionGate::new(None);
        let a = gate.admit();
        let b = gate.admit();
        assert_eq!(gate.stats().admitted, 2);
        assert_eq!(gate.stats().queued, 0);
        assert_eq!(gate.stats().in_flight, 2);
        drop(a);
        drop(b);
        assert_eq!(gate.stats().in_flight, 0);
    }

    #[test]
    fn zero_budget_is_clamped_to_one_instead_of_deadlocking() {
        let gate = AdmissionGate::new(Some(0));
        assert_eq!(gate.budget(), Some(1));
        let permit = gate.admit();
        drop(permit);
        assert_eq!(gate.stats().admitted, 1);
    }

    #[test]
    fn budget_bounds_concurrent_permits_and_queues_the_rest() {
        const BUDGET: u32 = 3;
        const THREADS: usize = 8;
        let gate = Arc::new(AdmissionGate::new(Some(BUDGET)));
        let barrier = Arc::new(Barrier::new(THREADS));
        let concurrent = Arc::new(AtomicU32::new(0));
        let peak = Arc::new(AtomicU32::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let gate = Arc::clone(&gate);
                let barrier = Arc::clone(&barrier);
                let concurrent = Arc::clone(&concurrent);
                let peak = Arc::clone(&peak);
                std::thread::spawn(move || {
                    barrier.wait();
                    for _ in 0..20 {
                        let _permit = gate.admit();
                        let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        std::thread::yield_now();
                        concurrent.fetch_sub(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = gate.stats();
        assert!(peak.load(Ordering::SeqCst) <= BUDGET, "budget breached: {}", peak.load(Ordering::SeqCst));
        assert_eq!(stats.admitted, (THREADS * 20) as u64);
        assert!(stats.queued > 0, "8 threads against a budget of 3 must have queued");
        assert_eq!(stats.in_flight, 0);
    }

    #[test]
    fn admissions_are_served_in_arrival_order() {
        // One slot, one holder; three queued threads must be admitted in
        // the order their tickets were drawn, not wake-up order.
        let gate = Arc::new(AdmissionGate::new(Some(1)));
        let order = Arc::new(Mutex::new(Vec::new()));
        let holder = gate.admit();
        let handles: Vec<_> = (0..3)
            .map(|i| {
                let gate = Arc::clone(&gate);
                let order = Arc::clone(&order);
                std::thread::spawn(move || {
                    // Stagger arrivals so ticket order is deterministic:
                    // thread i draws its ticket only once i earlier arrivals
                    // are already queued behind the held slot.
                    while gate.stats().queued < i {
                        std::thread::yield_now();
                    }
                    let _permit = gate.admit();
                    order.lock().push(i);
                })
            })
            .collect();
        // Wait until all three have drawn tickets before opening the gate.
        while gate.stats().queued < 3 {
            std::thread::yield_now();
        }
        drop(holder);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock(), vec![0, 1, 2]);
    }
}
