//! Bounded, FIFO admission to an execution site.
//!
//! Every OLAP dispatch acquires an [`AdmissionPermit`] from its target
//! site's [`AdmissionGate`] before executing and releases it when the
//! execution finishes (RAII, so error paths — notably the GPU-OOM → CPU
//! fallback — free the failed site's slot before competing for another).
//! A gate with a budget caps the queries a site executes at once; the
//! excess waits in strict arrival order, so a burst of cheap queries
//! cannot starve an earlier expensive one. A gate without a budget only
//! counts traffic.

use h2tap_common::{H2Error, Result};
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::{Condvar, PoisonError};
use std::time::{Duration, Instant};

/// Point-in-time admission counters of one gate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Queries admitted to the site (every execution acquires exactly one
    /// permit, so this equals the site's execution attempts).
    pub admitted: u64,
    /// Admissions that had to wait because the in-flight budget was
    /// exhausted (or an earlier arrival was still waiting).
    pub queued: u64,
    /// Waiters that gave up because their queue-wait budget expired before
    /// a permit freed (a wedged or quarantined site cannot strand clients).
    pub timeouts: u64,
    /// Permits currently held.
    pub in_flight: u32,
}

#[derive(Debug, Default)]
struct GateState {
    in_flight: u32,
    /// Next ticket to hand out. Tickets are served strictly in order:
    /// `now_serving` counts tickets admitted so far, so a ticket enters
    /// exactly when every earlier ticket has been admitted (or cancelled)
    /// and the budget has room.
    next_ticket: u64,
    now_serving: u64,
    /// Tickets whose waiters timed out before being served. `now_serving`
    /// skips over them so one abandoned ticket cannot wedge the FIFO.
    cancelled: BTreeSet<u64>,
    admitted: u64,
    queued: u64,
    timeouts: u64,
}

impl GateState {
    /// Advances `now_serving` past any cancelled tickets so the next live
    /// waiter becomes the head of the queue.
    fn skip_cancelled(&mut self) {
        while self.cancelled.remove(&self.now_serving) {
            self.now_serving += 1;
        }
    }
}

/// A FIFO ticket gate bounding in-flight executions on one site.
#[derive(Debug)]
pub struct AdmissionGate {
    state: Mutex<GateState>,
    cv: Condvar,
    budget: Option<u32>,
}

impl AdmissionGate {
    /// A gate admitting at most `budget` concurrent executions; `None` is
    /// unbounded (counting only). A budget of zero would deadlock every
    /// caller and is clamped to one.
    pub fn new(budget: Option<u32>) -> Self {
        Self { state: Mutex::new(GateState::default()), cv: Condvar::new(), budget: budget.map(|b| b.max(1)) }
    }

    /// The configured in-flight budget (`None` = unbounded).
    pub fn budget(&self) -> Option<u32> {
        self.budget
    }

    /// Blocks until the site has room, in strict arrival order, and returns
    /// the RAII permit that occupies the slot.
    pub fn admit(&self) -> AdmissionPermit<'_> {
        // Without a deadline `admit_timeout` cannot fail, so the loop body
        // runs exactly once; the loop only absorbs the impossible Err arm
        // without a panic path.
        loop {
            if let Ok(permit) = self.admit_timeout(None) {
                return permit;
            }
        }
    }

    /// Like [`AdmissionGate::admit`], but gives up once `timeout` expires
    /// without the ticket being served, returning [`H2Error::Timeout`]. The
    /// abandoned ticket is cancelled so later arrivals are not wedged
    /// behind it. `None` waits forever.
    pub fn admit_timeout(&self, timeout: Option<Duration>) -> Result<AdmissionPermit<'_>> {
        let mut state = self.state.lock();
        let Some(budget) = self.budget else {
            state.admitted += 1;
            state.in_flight += 1;
            return Ok(AdmissionPermit { gate: self });
        };
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        if ticket != state.now_serving || state.in_flight >= budget {
            state.queued += 1;
            let deadline = timeout.map(|t| Instant::now() + t);
            while ticket != state.now_serving || state.in_flight >= budget {
                match deadline {
                    None => state = self.cv.wait(state).unwrap_or_else(PoisonError::into_inner),
                    Some(deadline) => {
                        let now = Instant::now();
                        if now >= deadline {
                            state.timeouts += 1;
                            if ticket == state.now_serving {
                                // The head gave up while the budget was
                                // full: serve the next live ticket.
                                state.now_serving += 1;
                                state.skip_cancelled();
                            } else {
                                state.cancelled.insert(ticket);
                            }
                            drop(state);
                            self.cv.notify_all();
                            return Err(H2Error::Timeout("admission queue wait exceeded the configured budget".into()));
                        }
                        let (guard, _) =
                            self.cv.wait_timeout(state, deadline - now).unwrap_or_else(PoisonError::into_inner);
                        state = guard;
                    }
                }
            }
        }
        state.now_serving += 1;
        state.skip_cancelled();
        state.in_flight += 1;
        state.admitted += 1;
        // Advancing `now_serving` may have unblocked the next ticket even
        // though no permit was released (budget not yet full, or cancelled
        // tickets skipped): wake the queue so it can re-check.
        if state.in_flight < budget {
            drop(state);
            self.cv.notify_all();
        }
        Ok(AdmissionPermit { gate: self })
    }

    fn release(&self) {
        let mut state = self.state.lock();
        state.in_flight = state.in_flight.saturating_sub(1);
        drop(state);
        self.cv.notify_all();
    }

    /// Current counters.
    pub fn stats(&self) -> AdmissionStats {
        let state = self.state.lock();
        AdmissionStats {
            admitted: state.admitted,
            queued: state.queued,
            timeouts: state.timeouts,
            in_flight: state.in_flight,
        }
    }
}

/// Occupancy of one admission slot; dropping it frees the slot and wakes
/// the queue.
#[must_use = "dropping the permit immediately releases the admission slot"]
pub struct AdmissionPermit<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.gate.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::{Arc, Barrier};

    #[test]
    fn unbounded_gate_counts_but_never_queues() {
        let gate = AdmissionGate::new(None);
        let a = gate.admit();
        let b = gate.admit();
        assert_eq!(gate.stats().admitted, 2);
        assert_eq!(gate.stats().queued, 0);
        assert_eq!(gate.stats().in_flight, 2);
        drop(a);
        drop(b);
        assert_eq!(gate.stats().in_flight, 0);
    }

    #[test]
    fn zero_budget_is_clamped_to_one_instead_of_deadlocking() {
        let gate = AdmissionGate::new(Some(0));
        assert_eq!(gate.budget(), Some(1));
        let permit = gate.admit();
        drop(permit);
        assert_eq!(gate.stats().admitted, 1);
    }

    #[test]
    fn budget_bounds_concurrent_permits_and_queues_the_rest() {
        const BUDGET: u32 = 3;
        const THREADS: usize = 8;
        let gate = Arc::new(AdmissionGate::new(Some(BUDGET)));
        let barrier = Arc::new(Barrier::new(THREADS));
        let concurrent = Arc::new(AtomicU32::new(0));
        let peak = Arc::new(AtomicU32::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let gate = Arc::clone(&gate);
                let barrier = Arc::clone(&barrier);
                let concurrent = Arc::clone(&concurrent);
                let peak = Arc::clone(&peak);
                std::thread::spawn(move || {
                    barrier.wait();
                    for _ in 0..20 {
                        let _permit = gate.admit();
                        let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        std::thread::yield_now();
                        concurrent.fetch_sub(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = gate.stats();
        assert!(peak.load(Ordering::SeqCst) <= BUDGET, "budget breached: {}", peak.load(Ordering::SeqCst));
        assert_eq!(stats.admitted, (THREADS * 20) as u64);
        assert!(stats.queued > 0, "8 threads against a budget of 3 must have queued");
        assert_eq!(stats.in_flight, 0);
    }

    #[test]
    fn queued_waiter_times_out_instead_of_blocking_forever() {
        // Regression: a permit that never frees (a wedged site) used to
        // strand every queued waiter. With a timeout the waiter gets a
        // typed error and the timeout is counted.
        let gate = AdmissionGate::new(Some(1));
        let held = gate.admit();
        let err = gate.admit_timeout(Some(Duration::from_millis(20))).map(|_| ()).unwrap_err();
        assert!(matches!(err, H2Error::Timeout(_)), "expected Timeout, got {err:?}");
        let stats = gate.stats();
        assert_eq!(stats.timeouts, 1);
        assert_eq!(stats.queued, 1);
        assert_eq!(stats.in_flight, 1);
        drop(held);
        // The cancelled ticket must not wedge later arrivals.
        let p = gate.admit_timeout(Some(Duration::from_secs(5))).map(|_| ());
        assert!(p.is_ok());
    }

    #[test]
    fn cancelled_mid_queue_ticket_does_not_wedge_the_fifo() {
        // Three tickets behind one held slot; the middle one times out.
        // When the slot frees, both survivors must still be admitted.
        let gate = Arc::new(AdmissionGate::new(Some(1)));
        let held = gate.admit();
        let g1 = Arc::clone(&gate);
        let t1 = std::thread::spawn(move || g1.admit_timeout(Some(Duration::from_secs(10))).map(|_| ()));
        while gate.stats().queued < 1 {
            std::thread::yield_now();
        }
        // Ticket 2: gives up quickly while not at the head of the queue.
        let err = gate.admit_timeout(Some(Duration::from_millis(10))).map(|_| ()).unwrap_err();
        assert!(matches!(err, H2Error::Timeout(_)));
        let g3 = Arc::clone(&gate);
        let t3 = std::thread::spawn(move || g3.admit_timeout(Some(Duration::from_secs(10))).map(|_| ()));
        while gate.stats().queued < 3 {
            std::thread::yield_now();
        }
        drop(held);
        assert!(t1.join().unwrap().is_ok());
        assert!(t3.join().unwrap().is_ok());
        let stats = gate.stats();
        assert_eq!(stats.timeouts, 1);
        assert_eq!(stats.in_flight, 0);
    }

    #[test]
    fn admissions_are_served_in_arrival_order() {
        // One slot, one holder; three queued threads must be admitted in
        // the order their tickets were drawn, not wake-up order.
        let gate = Arc::new(AdmissionGate::new(Some(1)));
        let order = Arc::new(Mutex::new(Vec::new()));
        let holder = gate.admit();
        let handles: Vec<_> = (0..3)
            .map(|i| {
                let gate = Arc::clone(&gate);
                let order = Arc::clone(&order);
                std::thread::spawn(move || {
                    // Stagger arrivals so ticket order is deterministic:
                    // thread i draws its ticket only once i earlier arrivals
                    // are already queued behind the held slot.
                    while gate.stats().queued < i {
                        std::thread::yield_now();
                    }
                    let _permit = gate.admit();
                    order.lock().push(i);
                })
            })
            .collect();
        // Wait until all three have drawn tickets before opening the gate.
        while gate.stats().queued < 3 {
            std::thread::yield_now();
        }
        drop(holder);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock(), vec![0, 1, 2]);
    }
}
