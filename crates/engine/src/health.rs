//! Per-site health tracking: a circuit breaker between placement and the
//! execution sites.
//!
//! Every dispatch outcome feeds the target site's [`SiteHealth`]. A site
//! whose windowed error rate crosses the configured threshold — or that
//! reports a *persistent* fault such as permanent device loss — trips into
//! [`SiteHealthState::Quarantined`]: placement stops considering it, so the
//! argmin routes around the sick site and the calibrator never learns from
//! poisoned observations. After a configurable number of placement consults
//! the breaker moves to [`SiteHealthState::HalfOpen`] and lets a bounded
//! number of probe queries through; enough consecutive probe successes
//! re-admit the site, any probe failure re-quarantines it.
//!
//! State transitions are driven by dispatch events only (no wall-clock
//! timers), so the breaker's behaviour is deterministic under a seeded
//! [`FaultPlan`](h2tap_gpu_sim::FaultPlan).

use parking_lot::Mutex;

/// Circuit-breaker thresholds, carried by
/// [`CalderaConfig`](crate::CalderaConfig).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteHealthConfig {
    /// Whether outcomes trip the breaker at all. Off, every site is always
    /// admissible and only the counters are kept.
    pub enabled: bool,
    /// Sliding window (in dispatch outcomes) the error rate is computed
    /// over.
    pub window: usize,
    /// Error rate in `[0, 1]` over a full window that trips the breaker.
    pub error_threshold: f64,
    /// Minimum outcomes in the window before the rate is meaningful.
    pub min_observations: usize,
    /// Placement consults a quarantined site sits out before it is allowed
    /// half-open probes.
    pub quarantine_backoff: u64,
    /// Consecutive half-open probe successes required to close the breaker.
    pub probe_budget: u32,
}

impl Default for SiteHealthConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            window: 16,
            error_threshold: 0.5,
            min_observations: 4,
            quarantine_backoff: 8,
            probe_budget: 2,
        }
    }
}

/// The breaker's position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SiteHealthState {
    /// Healthy: placement considers the site normally.
    #[default]
    Closed,
    /// Tripped: placement excludes the site.
    Quarantined,
    /// Probation: a bounded number of probe queries may run.
    HalfOpen,
}

impl SiteHealthState {
    /// Stable lower-case label (metric values, dashboard rows).
    pub fn name(self) -> &'static str {
        match self {
            SiteHealthState::Closed => "closed",
            SiteHealthState::Quarantined => "quarantined",
            SiteHealthState::HalfOpen => "half_open",
        }
    }
}

/// Point-in-time health counters of one site.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SiteHealthStats {
    /// Current breaker position.
    pub state: SiteHealthState,
    /// Successful dispatches recorded.
    pub successes: u64,
    /// Failed dispatches recorded (transient and persistent).
    pub failures: u64,
    /// Failures whose fault was persistent (e.g. device loss).
    pub persistent_failures: u64,
    /// Times the breaker tripped into quarantine.
    pub quarantines: u64,
    /// Half-open probe queries admitted.
    pub probes: u64,
    /// Error rate over the current window (0 when the window is empty).
    pub window_error_rate: f64,
}

#[derive(Debug)]
struct HealthInner {
    state: SiteHealthState,
    /// Ring of recent outcomes (`true` = failure), newest overwrites
    /// oldest once `filled == window`.
    window: Vec<bool>,
    cursor: usize,
    filled: usize,
    /// Placement consults seen while quarantined (drives the backoff).
    skips: u64,
    /// Consecutive successes while half-open.
    probe_successes: u32,
    /// Probe queries currently running (chosen but no outcome yet).
    outstanding_probes: u32,
    successes: u64,
    failures: u64,
    persistent_failures: u64,
    quarantines: u64,
    probes: u64,
}

/// A per-site circuit breaker. `&self`-concurrent (internal mutex); one
/// lives in every `SiteSlot`.
#[derive(Debug)]
pub struct SiteHealth {
    config: SiteHealthConfig,
    inner: Mutex<HealthInner>,
}

/// What a placement consult learned about the site, plus whether the
/// breaker changed state during the consult (for span emission).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admissibility {
    /// Whether placement may consider the site right now.
    pub admissible: bool,
    /// `true` when this consult moved the breaker Quarantined → HalfOpen.
    pub reopened: bool,
}

impl SiteHealth {
    /// A breaker with the given thresholds, starting closed.
    pub fn new(config: SiteHealthConfig) -> Self {
        Self {
            config,
            inner: Mutex::new(HealthInner {
                state: SiteHealthState::Closed,
                window: vec![false; config.window.max(1)],
                cursor: 0,
                filled: 0,
                skips: 0,
                probe_successes: 0,
                outstanding_probes: 0,
                successes: 0,
                failures: 0,
                persistent_failures: 0,
                quarantines: 0,
                probes: 0,
            }),
        }
    }

    /// Consulted by placement once per dispatch: is the site currently a
    /// legitimate argmin candidate? Quarantined sites tick their backoff
    /// here and eventually move to half-open; a half-open site is a
    /// candidate while it has probe budget left (the probe itself is only
    /// consumed by [`SiteHealth::note_probe`] when placement picks it).
    pub fn consult(&self) -> Admissibility {
        if !self.config.enabled {
            return Admissibility { admissible: true, reopened: false };
        }
        let mut inner = self.inner.lock();
        match inner.state {
            SiteHealthState::Closed => Admissibility { admissible: true, reopened: false },
            SiteHealthState::Quarantined => {
                inner.skips += 1;
                if inner.skips >= self.config.quarantine_backoff {
                    inner.state = SiteHealthState::HalfOpen;
                    inner.probe_successes = 0;
                    inner.outstanding_probes = 0;
                    Admissibility { admissible: true, reopened: true }
                } else {
                    Admissibility { admissible: false, reopened: false }
                }
            }
            SiteHealthState::HalfOpen => Admissibility {
                admissible: inner.outstanding_probes < self.config.probe_budget.max(1),
                reopened: false,
            },
        }
    }

    /// Read-only admissibility (fallback candidate filtering): no backoff
    /// tick, no state transition.
    pub fn is_admissible(&self) -> bool {
        if !self.config.enabled {
            return true;
        }
        let inner = self.inner.lock();
        match inner.state {
            SiteHealthState::Closed => true,
            SiteHealthState::Quarantined => false,
            SiteHealthState::HalfOpen => inner.outstanding_probes < self.config.probe_budget.max(1),
        }
    }

    /// Called when placement actually chooses this site while half-open:
    /// one probe slot is consumed until the dispatch's outcome lands.
    pub fn note_probe(&self) {
        let mut inner = self.inner.lock();
        if inner.state == SiteHealthState::HalfOpen {
            inner.outstanding_probes += 1;
            inner.probes += 1;
        }
    }

    /// Records a successful dispatch. Returns `true` when this success
    /// closed a half-open breaker (quarantine lifted).
    pub fn record_success(&self) -> bool {
        let mut inner = self.inner.lock();
        inner.successes += 1;
        Self::push_window(&mut inner, false);
        if inner.state == SiteHealthState::HalfOpen {
            inner.outstanding_probes = inner.outstanding_probes.saturating_sub(1);
            inner.probe_successes += 1;
            if inner.probe_successes >= self.config.probe_budget.max(1) {
                inner.state = SiteHealthState::Closed;
                inner.skips = 0;
                inner.outstanding_probes = 0;
                // A re-admitted site starts with a clean slate: the faults
                // that tripped the breaker are history, not evidence.
                inner.window.iter_mut().for_each(|f| *f = false);
                inner.filled = 0;
                inner.cursor = 0;
                return true;
            }
        }
        false
    }

    /// Records a failed dispatch (`persistent` for faults that cannot heal,
    /// e.g. device loss). Returns `true` when this failure tripped the
    /// breaker into quarantine.
    pub fn record_failure(&self, persistent: bool) -> bool {
        let mut inner = self.inner.lock();
        inner.failures += 1;
        if persistent {
            inner.persistent_failures += 1;
        }
        Self::push_window(&mut inner, true);
        if !self.config.enabled || inner.state == SiteHealthState::Quarantined {
            return false;
        }
        let trip = if persistent || inner.state == SiteHealthState::HalfOpen {
            // A dead device or a failed probe needs no statistics.
            true
        } else {
            let rate = Self::window_rate(&inner);
            inner.filled >= self.config.min_observations.max(1) && rate >= self.config.error_threshold
        };
        if trip {
            inner.state = SiteHealthState::Quarantined;
            inner.skips = 0;
            inner.probe_successes = 0;
            inner.outstanding_probes = 0;
            inner.quarantines += 1;
        }
        trip
    }

    /// Current counters and breaker position.
    pub fn stats(&self) -> SiteHealthStats {
        let inner = self.inner.lock();
        SiteHealthStats {
            state: inner.state,
            successes: inner.successes,
            failures: inner.failures,
            persistent_failures: inner.persistent_failures,
            quarantines: inner.quarantines,
            probes: inner.probes,
            window_error_rate: Self::window_rate(&inner),
        }
    }

    fn push_window(inner: &mut HealthInner, failed: bool) {
        let len = inner.window.len();
        inner.window[inner.cursor] = failed;
        inner.cursor = (inner.cursor + 1) % len;
        inner.filled = (inner.filled + 1).min(len);
    }

    fn window_rate(inner: &HealthInner) -> f64 {
        if inner.filled == 0 {
            return 0.0;
        }
        let failures = inner.window.iter().take(inner.filled.min(inner.window.len())).filter(|f| **f).count();
        failures as f64 / inner.filled as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tight() -> SiteHealthConfig {
        SiteHealthConfig {
            enabled: true,
            window: 4,
            error_threshold: 0.5,
            min_observations: 2,
            quarantine_backoff: 3,
            probe_budget: 2,
        }
    }

    #[test]
    fn windowed_error_rate_trips_the_breaker() {
        let h = SiteHealth::new(tight());
        assert!(!h.record_failure(false), "one failure in an empty window is not evidence");
        assert_eq!(h.stats().state, SiteHealthState::Closed);
        assert!(h.record_failure(false), "2/2 failures crosses the 0.5 threshold");
        assert_eq!(h.stats().state, SiteHealthState::Quarantined);
        assert_eq!(h.stats().quarantines, 1);
    }

    #[test]
    fn persistent_fault_quarantines_immediately() {
        let h = SiteHealth::new(tight());
        for _ in 0..10 {
            h.record_success();
        }
        assert!(h.record_failure(true), "device loss needs no statistics");
        assert_eq!(h.stats().state, SiteHealthState::Quarantined);
        assert_eq!(h.stats().persistent_failures, 1);
    }

    #[test]
    fn quarantine_backs_off_then_probes_then_readmits() {
        let h = SiteHealth::new(tight());
        h.record_failure(true);
        // Two consults sit out the backoff, the third reopens half-open.
        assert!(!h.consult().admissible);
        assert!(!h.consult().admissible);
        let third = h.consult();
        assert!(third.admissible && third.reopened);
        assert_eq!(h.stats().state, SiteHealthState::HalfOpen);
        // First probe success is not enough; the second closes the breaker.
        h.note_probe();
        assert!(!h.record_success());
        assert!(h.consult().admissible);
        h.note_probe();
        assert!(h.record_success(), "probe budget met: quarantine lifted");
        assert_eq!(h.stats().state, SiteHealthState::Closed);
        assert_eq!(h.stats().probes, 2);
        // The window was reset: one new failure is not instant re-quarantine.
        assert!(!h.record_failure(false));
        assert_eq!(h.stats().state, SiteHealthState::Closed);
    }

    #[test]
    fn failed_probe_requarantines() {
        let h = SiteHealth::new(tight());
        h.record_failure(true);
        for _ in 0..3 {
            h.consult();
        }
        assert_eq!(h.stats().state, SiteHealthState::HalfOpen);
        h.note_probe();
        assert!(h.record_failure(false), "a failed probe re-trips immediately");
        assert_eq!(h.stats().state, SiteHealthState::Quarantined);
        assert_eq!(h.stats().quarantines, 2);
    }

    #[test]
    fn half_open_bounds_concurrent_probes() {
        let h = SiteHealth::new(tight());
        h.record_failure(true);
        for _ in 0..3 {
            h.consult();
        }
        // Two probe slots: both can be claimed, the third consult is turned
        // away until an outcome frees a slot.
        h.note_probe();
        assert!(h.consult().admissible);
        h.note_probe();
        assert!(!h.consult().admissible, "probe budget exhausted until an outcome lands");
        assert!(!h.is_admissible());
        h.record_failure(false);
        assert_eq!(h.stats().state, SiteHealthState::Quarantined);
    }

    #[test]
    fn disabled_breaker_only_counts() {
        let h = SiteHealth::new(SiteHealthConfig { enabled: false, ..tight() });
        for _ in 0..8 {
            h.record_failure(true);
        }
        assert!(h.consult().admissible);
        assert_eq!(h.stats().state, SiteHealthState::Closed);
        assert_eq!(h.stats().failures, 8);
        assert_eq!(h.stats().window_error_rate, 1.0);
    }
}
