//! `h2tap-analysis` — the workspace lint engine.
//!
//! A self-contained static-analysis pass over the workspace's Rust sources
//! (hand-rolled token scanner; the offline vendor tree has no `syn`) with
//! five lint families, run as a CI gate ahead of the concurrent-execution
//! refactor:
//!
//! 1. **lock-order audit** — every `.lock()`/`.read()`/`.write()`
//!    acquisition site per function; nested acquisitions (depth > 1) and
//!    cycles in the nested-acquisition graph are potential deadlocks.
//! 2. **determinism lint** — `HashMap`/`HashSet` iteration in
//!    result-producing crates and f64-reassociating folds outside the
//!    blessed kernel modules, protecting the byte-identity contract.
//! 3. **panic-path lint** — `unwrap`/`expect`/`panic!`/`todo!` in non-test
//!    code of `engine`/`olap`/`scheduler`/`storage`.
//! 4. **error-swallow lint** — `let _ = <fallible call>;` and `.ok()` in
//!    non-test code of the same crates: a silently dropped `Result` is a
//!    fault the resilience ladder never sees.
//! 5. **concurrency-readiness inventory** — `&mut self` methods on
//!    `ExecutionSite` impls and interior-mutability fields: the worklist
//!    the `&self`-concurrent refactor will consume (informational).
//!
//! Escape hatch: `// h2tap: allow(<lint>) — <reason>` on the finding's
//! line or the line above. Reasonless or misspelt allows are themselves
//! findings and never suppress anything.

pub mod lexer;
pub mod lints;
pub mod model;
pub mod report;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use lints::{InteriorField, LockCycle, LockEdge, MutSelfMethod};
use model::SourceFile;

/// The lint families that produce findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lint {
    LockOrder,
    Determinism,
    Panic,
    /// Silently discarded fallible results (`let _ = …;`, `.ok()`).
    ErrorSwallow,
    /// Malformed `h2tap:` annotations; never allowable.
    AllowSyntax,
}

impl Lint {
    pub fn name(self) -> &'static str {
        match self {
            Lint::LockOrder => "lock_order",
            Lint::Determinism => "determinism",
            Lint::Panic => "panic",
            Lint::ErrorSwallow => "error_swallow",
            Lint::AllowSyntax => "allow_syntax",
        }
    }

    pub const ALL: [Lint; 5] = [Lint::LockOrder, Lint::Determinism, Lint::Panic, Lint::ErrorSwallow, Lint::AllowSyntax];
}

/// One lint finding at a source location. `allow_reason` carries the text
/// of a matching `h2tap: allow` annotation; unannotated findings are what
/// `--deny` gates on.
#[derive(Debug, Clone)]
pub struct Finding {
    pub lint: Lint,
    pub file: String,
    pub line: u32,
    pub function: Option<String>,
    pub message: String,
    pub allow_reason: Option<String>,
}

impl Finding {
    pub fn is_allowed(&self) -> bool {
        self.allow_reason.is_some()
    }
}

/// The concurrency-readiness worklist (informational, never denied).
#[derive(Debug, Default)]
pub struct Inventory {
    pub mut_self_methods: Vec<MutSelfMethod>,
    pub interior_fields: Vec<InteriorField>,
}

/// Full analysis output over one root.
#[derive(Debug)]
pub struct Analysis {
    pub root: PathBuf,
    pub files_scanned: usize,
    pub findings: Vec<Finding>,
    pub lock_edges: Vec<LockEdge>,
    pub lock_cycles: Vec<LockCycle>,
    pub inventory: Inventory,
}

impl Analysis {
    pub fn unannotated(&self) -> Vec<&Finding> {
        self.findings.iter().filter(|f| !f.is_allowed()).collect()
    }

    /// `(total, allowed)` counts for one lint family.
    pub fn counts(&self, lint: Lint) -> (usize, usize) {
        let total = self.findings.iter().filter(|f| f.lint == lint).count();
        let allowed = self.findings.iter().filter(|f| f.lint == lint && f.is_allowed()).count();
        (total, allowed)
    }
}

/// Crates whose non-test code the panic-path lint covers.
const PANIC_CRATES: &[&str] = &["engine", "olap", "scheduler", "storage"];

/// Crates whose non-test code the error-swallow lint covers: the serving
/// path, where a silently dropped `Result` is a fault the resilience
/// ladder never sees.
const SWALLOW_CRATES: &[&str] = &["engine", "olap", "scheduler", "storage"];

/// Result-producing crates the determinism lint covers.
const DETERMINISM_CRATES: &[&str] = &["engine", "olap", "scheduler", "storage", "common", "workloads"];

/// Kernel modules where f64 fold order *is* the contract — `.sum::<f64>()`
/// there is the blessed implementation, not a violation.
const BLESSED_FOLD_MODULES: &[&str] = &["crates/olap/src/simd.rs", "crates/olap/src/operators.rs"];

/// Analyzes `root`. Two modes:
///
/// * **workspace mode** (`<root>/crates` exists): scans `crates/*/src` and
///   the umbrella `src/`, applying each lint to its configured crates;
/// * **fixture mode** (no `crates/` dir): scans every `.rs` under `root`
///   and applies every lint to every file — what the fixture tests and the
///   CI negative test use.
pub fn analyze(root: &Path) -> io::Result<Analysis> {
    let mut files: Vec<(PathBuf, String, String)> = Vec::new(); // (abs, rel, crate)
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> =
            fs::read_dir(&crates_dir)?.filter_map(|e| e.ok()).map(|e| e.path()).filter(|p| p.is_dir()).collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let crate_name = dir.file_name().and_then(|n| n.to_str()).unwrap_or_default().to_string();
            collect_rs(&dir.join("src"), root, &crate_name, &mut files)?;
        }
        collect_rs(&root.join("src"), root, "caldera-repro", &mut files)?;
    } else {
        collect_rs(root, root, "", &mut files)?;
    }
    files.sort_by(|a, b| a.1.cmp(&b.1));

    let mut analysis = Analysis {
        root: root.to_path_buf(),
        files_scanned: 0,
        findings: Vec::new(),
        lock_edges: Vec::new(),
        lock_cycles: Vec::new(),
        inventory: Inventory::default(),
    };
    for (abs, rel, crate_name) in files {
        let src = fs::read_to_string(&abs)?;
        let fixture = crate_name.is_empty();
        let file = SourceFile::new(rel.clone(), crate_name.clone(), &src);
        analysis.files_scanned += 1;
        analysis.findings.extend(lints::lock_order(&file, &mut analysis.lock_edges));
        if fixture || DETERMINISM_CRATES.contains(&crate_name.as_str()) {
            let blessed = BLESSED_FOLD_MODULES.contains(&rel.as_str());
            analysis.findings.extend(lints::determinism(&file, blessed));
        }
        if fixture || PANIC_CRATES.contains(&crate_name.as_str()) {
            analysis.findings.extend(lints::panic_paths(&file));
        }
        if fixture || SWALLOW_CRATES.contains(&crate_name.as_str()) {
            analysis.findings.extend(lints::error_swallows(&file));
        }
        lints::inventory(&file, &mut analysis.inventory.mut_self_methods, &mut analysis.inventory.interior_fields);
        for (line, msg) in &file.lexed.malformed_allows {
            analysis.findings.push(Finding {
                lint: Lint::AllowSyntax,
                file: rel.clone(),
                line: *line,
                function: None,
                message: msg.clone(),
                allow_reason: None,
            });
        }
    }
    analysis.lock_cycles = lints::lock_cycles(&analysis.lock_edges);
    for cycle in &analysis.lock_cycles {
        if cycle.allowed {
            continue;
        }
        let anchor = analysis
            .lock_edges
            .iter()
            .find(|e| cycle.keys.contains(&e.from) && cycle.keys.contains(&e.to))
            .map(|e| (e.file.clone(), e.line))
            .unwrap_or_default();
        analysis.findings.push(Finding {
            lint: Lint::LockOrder,
            file: anchor.0,
            line: anchor.1,
            function: None,
            message: format!("lock-order cycle: {} \u{2192} {}", cycle.keys.join(" \u{2192} "), cycle.keys[0]),
            allow_reason: None,
        });
    }
    analysis.findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(analysis)
}

/// Recursively collects `.rs` files under `dir` (skipping `target/` and
/// fixture-irrelevant noise) as (abs, root-relative, crate) triples.
fn collect_rs(dir: &Path, root: &Path, crate_name: &str, out: &mut Vec<(PathBuf, String, String)>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or_default();
            if name == "target" || name == ".git" || name == "vendor" {
                continue;
            }
            collect_rs(&path, root, crate_name, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
            out.push((path.clone(), rel, crate_name.to_string()));
        }
    }
    Ok(())
}
