//! CLI for the workspace lint engine.
//!
//! ```text
//! cargo run -p h2tap-analysis --release -- --deny
//! cargo run -p h2tap-analysis --release -- --root crates/analysis/tests/fixtures/known_bad --deny
//! ```
//!
//! Writes the machine-readable report (default `ANALYSIS.json`) and prints
//! a human summary. With `--deny`, exits non-zero when any finding lacks a
//! reasoned `// h2tap: allow(<lint>) — <reason>` annotation.

// This is the CLI surface of the linter: stdout is its interface.
#![allow(clippy::print_stdout)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut report_path = PathBuf::from("ANALYSIS.json");
    let mut deny = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage("--root requires a path"),
            },
            "--report" => match args.next() {
                Some(p) => report_path = PathBuf::from(p),
                None => return usage("--report requires a path"),
            },
            "--deny" => deny = true,
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let analysis = match h2tap_analysis::analyze(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("h2tap-analysis: failed to analyze {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let json = h2tap_analysis::report::render_json(&analysis);
    if let Err(e) = std::fs::write(&report_path, &json) {
        eprintln!("h2tap-analysis: failed to write {}: {e}", report_path.display());
        return ExitCode::from(2);
    }
    print!("{}", h2tap_analysis::report::render_summary(&analysis));
    println!("  report: {}", report_path.display());
    if deny && !analysis.unannotated().is_empty() {
        println!("  --deny: failing on unannotated findings");
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("h2tap-analysis: {err}");
    }
    eprintln!("usage: h2tap-analysis [--root <dir>] [--report <file>] [--deny]");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
