//! Machine-readable JSON report and human-readable summary rendering.
//!
//! The JSON is written by hand (the offline vendor `serde` is a minimal
//! stand-in), matching the style of `h2tap-obs`'s Chrome-trace exporter.

use std::fmt::Write as _;

use crate::{Analysis, Lint};

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn opt(s: &Option<String>) -> String {
    match s {
        Some(v) => format!("\"{}\"", esc(v)),
        None => "null".to_string(),
    }
}

/// Renders the full analysis as a JSON document.
pub fn render_json(a: &Analysis) -> String {
    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"version\": 1,");
    let _ = writeln!(j, "  \"root\": \"{}\",", esc(&a.root.display().to_string()));
    let _ = writeln!(j, "  \"files_scanned\": {},", a.files_scanned);
    // Summary block.
    j.push_str("  \"summary\": {\n");
    for lint in Lint::ALL {
        let (total, allowed) = a.counts(lint);
        let _ = writeln!(j, "    \"{}\": {{\"findings\": {total}, \"allowed\": {allowed}}},", lint.name());
    }
    let _ = writeln!(j, "    \"unannotated\": {}", a.unannotated().len());
    j.push_str("  },\n");
    // Findings.
    j.push_str("  \"findings\": [\n");
    for (i, f) in a.findings.iter().enumerate() {
        let comma = if i + 1 == a.findings.len() { "" } else { "," };
        let _ = writeln!(
            j,
            "    {{\"lint\": \"{}\", \"file\": \"{}\", \"line\": {}, \"function\": {}, \"message\": \"{}\", \"allowed\": {}, \"reason\": {}}}{comma}",
            f.lint.name(),
            esc(&f.file),
            f.line,
            opt(&f.function),
            esc(&f.message),
            f.is_allowed(),
            opt(&f.allow_reason),
        );
    }
    j.push_str("  ],\n");
    // Lock graph.
    j.push_str("  \"lock_graph\": {\n    \"edges\": [\n");
    for (i, e) in a.lock_edges.iter().enumerate() {
        let comma = if i + 1 == a.lock_edges.len() { "" } else { "," };
        let _ = writeln!(
            j,
            "      {{\"from\": \"{}\", \"to\": \"{}\", \"file\": \"{}\", \"line\": {}, \"function\": \"{}\", \"allowed\": {}}}{comma}",
            esc(&e.from),
            esc(&e.to),
            esc(&e.file),
            e.line,
            esc(&e.function),
            e.allowed,
        );
    }
    j.push_str("    ],\n    \"cycles\": [\n");
    for (i, c) in a.lock_cycles.iter().enumerate() {
        let comma = if i + 1 == a.lock_cycles.len() { "" } else { "," };
        let keys: Vec<String> = c.keys.iter().map(|k| format!("\"{}\"", esc(k))).collect();
        let _ = writeln!(j, "      {{\"keys\": [{}], \"allowed\": {}}}{comma}", keys.join(", "), c.allowed);
    }
    j.push_str("    ]\n  },\n");
    // Concurrency-readiness inventory.
    j.push_str("  \"inventory\": {\n    \"execution_site_mut_self\": [\n");
    for (i, m) in a.inventory.mut_self_methods.iter().enumerate() {
        let comma = if i + 1 == a.inventory.mut_self_methods.len() { "" } else { "," };
        let _ = writeln!(
            j,
            "      {{\"impl\": \"{}\", \"method\": \"{}\", \"file\": \"{}\", \"line\": {}}}{comma}",
            esc(&m.impl_type),
            esc(&m.method),
            esc(&m.file),
            m.line,
        );
    }
    j.push_str("    ],\n    \"interior_mutability\": [\n");
    for (i, f) in a.inventory.interior_fields.iter().enumerate() {
        let comma = if i + 1 == a.inventory.interior_fields.len() { "" } else { "," };
        let _ = writeln!(
            j,
            "      {{\"struct\": \"{}\", \"field\": \"{}\", \"kind\": \"{}\", \"file\": \"{}\", \"line\": {}}}{comma}",
            esc(&f.struct_name),
            esc(&f.field),
            esc(&f.kind),
            esc(&f.file),
            f.line,
        );
    }
    j.push_str("    ]\n  }\n}\n");
    j
}

/// One-screen human summary (the CLI prints this; unannotated findings are
/// listed in full so the CI log is actionable without the artifact).
pub fn render_summary(a: &Analysis) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "h2tap-analysis: scanned {} files under {}", a.files_scanned, a.root.display());
    for lint in Lint::ALL {
        let (total, allowed) = a.counts(lint);
        let _ = writeln!(s, "  {:<12} {:>4} findings ({} allowed)", lint.name(), total, allowed);
    }
    let _ = writeln!(
        s,
        "  inventory    {:>4} &mut self ExecutionSite methods, {} interior-mutability fields",
        a.inventory.mut_self_methods.len(),
        a.inventory.interior_fields.len(),
    );
    let unannotated = a.unannotated();
    if unannotated.is_empty() {
        let _ = writeln!(s, "  clean: every finding carries a reasoned h2tap allow annotation");
    } else {
        let _ = writeln!(s, "  {} UNANNOTATED finding(s):", unannotated.len());
        for f in unannotated {
            let func = f.function.as_deref().map(|n| format!(" (fn {n})")).unwrap_or_default();
            let _ = writeln!(s, "    [{}] {}:{}{}: {}", f.lint.name(), f.file, f.line, func, f.message);
        }
    }
    s
}

/// A bare-bones structural validator used by tests: balanced braces and
/// quotes outside of escapes. Not a full JSON parser, but catches broken
/// escaping and truncated documents.
pub fn json_is_structurally_valid(j: &str) -> bool {
    let mut depth = 0i64;
    let mut in_str = false;
    let mut escaped = false;
    for c in j.chars() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' => depth -= 1,
            _ => {}
        }
        if depth < 0 {
            return false;
        }
    }
    depth == 0 && !in_str
}
