//! The four lint passes: lock-order audit, determinism lint, panic-path
//! lint, and the concurrency-readiness inventory.

use crate::lexer::Token;
use crate::model::{matching_brace, SourceFile};
use crate::{Finding, Lint};

/// Lock-acquisition methods. All of them take **no arguments**, which is
/// what separates `RwLock::read()` from `io::Read::read(&mut buf)` at the
/// token level.
const LOCK_METHODS: &[&str] = &["lock", "read", "write", "try_lock", "try_read", "try_write"];

/// A nested-acquisition edge: `to` was acquired while `from` was held.
/// Keys are `file-stem.receiver` so unrelated `inner` fields in different
/// files stay distinct in the workspace graph.
#[derive(Debug, Clone)]
pub struct LockEdge {
    pub from: String,
    pub to: String,
    pub file: String,
    pub line: u32,
    pub function: String,
    pub allowed: bool,
}

/// A cycle in the nested-acquisition graph (`keys` in acquisition order).
#[derive(Debug, Clone)]
pub struct LockCycle {
    pub keys: Vec<String>,
    pub allowed: bool,
}

#[derive(Debug, Clone)]
struct Guard {
    /// Graph key: receiver field/local name qualified by file stem.
    key: String,
    /// Local binding name, for `drop(name)` tracking; `None` for
    /// statement-scoped temporaries.
    binding: Option<String>,
    /// Brace depth the guard was bound at; it dies when the block closes.
    depth: u32,
}

/// Lock-order audit over one function body: tracks live guards through
/// `let` bindings, statement temporaries, `drop()` calls, and block scope,
/// and reports every acquisition made while another guard is live.
///
/// Known limits (token-level, intraprocedural): a guard returned from a
/// helper or acquired inside a callee is invisible, and temporaries kept
/// alive by `match` scrutinees are tracked but plain-`if` condition
/// temporaries are assumed dropped at the block brace.
pub fn lock_order(file: &SourceFile, edges: &mut Vec<LockEdge>) -> Vec<Finding> {
    let mut findings = Vec::new();
    let stem = file.rel_path.rsplit('/').next().unwrap_or(&file.rel_path).trim_end_matches(".rs").to_string();
    for func in file.functions.iter().filter(|f| f.body.is_some()) {
        let (body_start, body_end) = func.body.expect("filtered to Some above");
        let toks = file.tokens();
        let mut held: Vec<Guard> = Vec::new();
        let mut stmt: Vec<Guard> = Vec::new();
        let mut depth = 0u32;
        let mut stmt_start = body_start + 1;
        let mut i = body_start;
        while i <= body_end {
            let t = &toks[i];
            if t.is_punct('{') {
                // `match` scrutinee and `if let`/`while let` temporaries
                // live into the block; plain condition temporaries do not.
                let keeps_temps = toks.get(stmt_start).is_some_and(|s| s.is_ident("match"))
                    || (toks.get(stmt_start).is_some_and(|s| s.is_ident("if") || s.is_ident("while"))
                        && toks.get(stmt_start + 1).is_some_and(|s| s.is_ident("let")));
                depth += 1;
                if keeps_temps {
                    for mut g in stmt.drain(..) {
                        g.depth = depth;
                        held.push(g);
                    }
                } else {
                    stmt.clear();
                }
                stmt_start = i + 1;
            } else if t.is_punct('}') {
                depth = depth.saturating_sub(1);
                held.retain(|g| g.depth <= depth);
                stmt.clear();
                stmt_start = i + 1;
            } else if t.is_punct(';') {
                stmt.clear();
                stmt_start = i + 1;
            } else if t.is_ident("drop") && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
                if let Some(name) = toks.get(i + 2).and_then(|n| n.ident()) {
                    if toks.get(i + 3).is_some_and(|n| n.is_punct(')')) {
                        held.retain(|g| g.binding.as_deref() != Some(name));
                    }
                }
            } else if let Some(acq) = acquisition_at(toks, i, body_end) {
                let key = format!("{stem}.{}", acq.receiver);
                let live: Vec<&Guard> = held.iter().chain(stmt.iter()).collect();
                if !live.is_empty() {
                    let allow = file.allow_for("lock_order", t.line);
                    let held_keys: Vec<&str> = live.iter().map(|g| g.key.as_str()).collect();
                    for h in &held_keys {
                        edges.push(LockEdge {
                            from: (*h).to_string(),
                            to: key.clone(),
                            file: file.rel_path.clone(),
                            line: t.line,
                            function: func.name.clone(),
                            allowed: allow.is_some(),
                        });
                    }
                    findings.push(Finding {
                        lint: Lint::LockOrder,
                        file: file.rel_path.clone(),
                        line: t.line,
                        function: Some(func.name.clone()),
                        message: format!(
                            "acquires `{}` while holding {} (nesting depth {})",
                            key,
                            held_keys.iter().map(|k| format!("`{k}`")).collect::<Vec<_>>().join(", "),
                            live.len() + 1,
                        ),
                        allow_reason: allow.map(|a| a.reason.clone()),
                    });
                }
                let guard = Guard { key, binding: acq.binding.clone(), depth };
                if acq.let_bound {
                    held.push(guard);
                } else {
                    stmt.push(guard);
                }
                i = acq.after_call;
                continue;
            }
            i += 1;
        }
    }
    findings
}

struct Acquisition {
    receiver: String,
    /// Token index just past the `()` of the lock call.
    after_call: usize,
    let_bound: bool,
    binding: Option<String>,
}

/// Detects `recv.lock()` / `.read()` / `.write()` (empty argument list) at
/// token index `i` pointing at the `.`; classifies the guard as let-bound
/// when the statement is `let [mut] name = <chain> [.unwrap()/.expect(..)];`.
fn acquisition_at(toks: &[Token], i: usize, body_end: usize) -> Option<Acquisition> {
    if !toks[i].is_punct('.') {
        return None;
    }
    let method = toks.get(i + 1)?.ident()?;
    if !LOCK_METHODS.contains(&method) {
        return None;
    }
    if !(toks.get(i + 2)?.is_punct('(') && toks.get(i + 3)?.is_punct(')')) {
        return None;
    }
    let receiver = receiver_name(toks, i);
    let mut after = i + 4;
    // Statement start: scan back to the previous `;`, `{`, or `}`.
    let mut s = i;
    while s > 0 && !(toks[s - 1].is_punct(';') || toks[s - 1].is_punct('{') || toks[s - 1].is_punct('}')) {
        s -= 1;
    }
    let mut let_bound = false;
    let mut binding = None;
    if toks.get(s).is_some_and(|t| t.is_ident("let")) {
        let mut b = s + 1;
        if toks.get(b).is_some_and(|t| t.is_ident("mut")) {
            b += 1;
        }
        binding = toks.get(b).and_then(|t| t.ident()).map(str::to_string);
        // Let-bound if the statement ends right after the call, modulo a
        // trailing `.unwrap()` / `.expect("...")` (std `Mutex` style).
        let mut j = after;
        loop {
            if toks.get(j).is_some_and(|t| t.is_punct(';')) {
                let_bound = true;
                after = j;
                break;
            }
            if toks.get(j).is_some_and(|t| t.is_punct('.'))
                && toks.get(j + 1).is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"))
                && toks.get(j + 2).is_some_and(|t| t.is_punct('('))
            {
                let mut d = 1i64;
                j += 3;
                while j <= body_end && d > 0 {
                    if toks[j].is_punct('(') {
                        d += 1;
                    } else if toks[j].is_punct(')') {
                        d -= 1;
                    }
                    j += 1;
                }
                continue;
            }
            break;
        }
    }
    Some(Acquisition { receiver, after_call: after, let_bound, binding })
}

/// The receiver name of the chain ending at the `.` at index `dot`:
/// the field/local ident directly before it, or the method name for
/// call results (`self.partition(p)?.read()` → `partition`).
fn receiver_name(toks: &[Token], dot: usize) -> String {
    let mut k = dot;
    while k > 0 {
        k -= 1;
        let t = &toks[k];
        if t.is_punct('?') {
            continue;
        }
        if let Some(id) = t.ident() {
            return id.to_string();
        }
        if t.is_punct(')') || t.is_punct(']') {
            // Walk back over the balanced group to the ident before it.
            let (open, close) = if t.is_punct(')') { ('(', ')') } else { ('[', ']') };
            let mut d = 1i64;
            while k > 0 && d > 0 {
                k -= 1;
                if toks[k].is_punct(close) {
                    d += 1;
                } else if toks[k].is_punct(open) {
                    d -= 1;
                }
            }
            continue;
        }
        break;
    }
    "<expr>".to_string()
}

/// Finds cycles in the workspace nested-acquisition graph. A cycle is
/// reported once per distinct key set; it is `allowed` only when **every**
/// edge on it carries an allow annotation.
pub fn lock_cycles(edges: &[LockEdge]) -> Vec<LockCycle> {
    use std::collections::{BTreeMap, BTreeSet};
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.from).or_default().insert(&e.to);
    }
    let mut cycles: Vec<LockCycle> = Vec::new();
    let mut seen_sets: BTreeSet<Vec<String>> = BTreeSet::new();
    // Bounded DFS from each node; the workspace graph is tiny.
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        let mut stack: Vec<(&str, Vec<&str>)> = vec![(start, vec![start])];
        while let Some((node, path)) = stack.pop() {
            for &next in adj.get(node).into_iter().flatten() {
                if next == start {
                    let mut set: Vec<String> = path.iter().map(|s| s.to_string()).collect();
                    set.sort();
                    if seen_sets.insert(set) {
                        let keys: Vec<String> = path.iter().map(|s| s.to_string()).collect();
                        let allowed = path
                            .iter()
                            .zip(path.iter().cycle().skip(1))
                            .all(|(f, t)| edges.iter().filter(|e| &e.from == f && &e.to == t).all(|e| e.allowed));
                        cycles.push(LockCycle { keys, allowed });
                    }
                } else if !path.contains(&next) && path.len() < 8 {
                    let mut p = path.clone();
                    p.push(next);
                    stack.push((next, p));
                }
            }
        }
    }
    cycles
}

/// Iteration-order methods on hash containers that leak nondeterminism.
const HASH_ITER_METHODS: &[&str] =
    &["iter", "iter_mut", "into_iter", "keys", "values", "values_mut", "drain", "retain"];

/// Determinism lint: flags iteration over `HashMap`/`HashSet`-typed names
/// (insertion-ordered arenas and `BTreeMap` are the blessed paths) and
/// f64-reassociating folds (`.sum::<f64>()`, `.product::<f64>()`, rayon
/// parallel iterators) outside the blessed kernel modules.
pub fn determinism(file: &SourceFile, blessed_fold_module: bool) -> Vec<Finding> {
    let toks = file.tokens();
    let mut findings = Vec::new();
    // Pass 1: names declared with a hash-container type in this file —
    // `name: HashMap<..>` fields/params and `let [mut] name = HashMap::new()`.
    let mut hash_names: Vec<String> = Vec::new();
    for i in 0..toks.len() {
        let Some(id) = toks[i].ident() else {
            continue;
        };
        if id != "HashMap" && id != "HashSet" {
            continue;
        }
        // Walk back over reference sigils (`&`, `&mut`, `&'a`) so borrowed
        // params like `m: &HashMap<..>` still register the name.
        let mut p = i;
        while p > 0
            && (toks[p - 1].is_punct('&')
                || toks[p - 1].is_ident("mut")
                || matches!(toks[p - 1].kind, crate::lexer::TokKind::Lifetime))
        {
            p -= 1;
        }
        if p >= 2 && toks[p - 1].is_punct(':') && !toks[p - 2].is_punct(':') {
            if let Some(name) = toks[p - 2].ident() {
                hash_names.push(name.to_string());
            }
        } else if i >= 2 && toks[i - 1].is_punct('=') {
            let mut b = i - 1;
            while b > 0 && !(toks[b - 1].is_punct(';') || toks[b - 1].is_punct('{') || toks[b - 1].is_punct('}')) {
                b -= 1;
            }
            if toks.get(b).is_some_and(|t| t.is_ident("let")) {
                let n = if toks.get(b + 1).is_some_and(|t| t.is_ident("mut")) { b + 2 } else { b + 1 };
                if let Some(name) = toks.get(n).and_then(|t| t.ident()) {
                    hash_names.push(name.to_string());
                }
            }
        }
    }
    hash_names.sort();
    hash_names.dedup();
    // Pass 2: flag iteration over those names and reassociating f64 folds.
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if file.in_test_code(t.line) {
            i += 1;
            continue;
        }
        // `name.iter()` / `.keys()` / ... on a hash-typed name.
        if t.is_punct('.')
            && i >= 1
            && toks.get(i + 1).is_some_and(|m| m.ident().is_some_and(|id| HASH_ITER_METHODS.contains(&id)))
            && toks.get(i + 2).is_some_and(|p| p.is_punct('('))
        {
            if let Some(recv) = toks[i - 1].ident() {
                if hash_names.iter().any(|n| n == recv) {
                    push_determinism(&mut findings, file, t.line, i, format!(
                        "iteration over hash container `{recv}` ({}()); insertion-ordered arenas or BTreeMap are the blessed deterministic paths",
                        toks[i + 1].ident().unwrap_or("?"),
                    ));
                }
            }
        }
        // `for x in [&]name {` — bare iteration without a method call.
        if t.is_ident("for") {
            let mut j = i + 1;
            while j < toks.len() && !toks[j].is_ident("in") && !toks[j].is_punct('{') {
                j += 1;
            }
            if toks.get(j).is_some_and(|x| x.is_ident("in")) {
                let mut k = j + 1;
                while k < toks.len() && !toks[k].is_punct('{') {
                    let bare = toks[k].ident().is_some_and(|id| hash_names.iter().any(|n| n == id))
                        && !toks.get(k + 1).is_some_and(|n| n.is_punct('.'));
                    if bare {
                        let name = toks[k].ident().expect("checked ident above");
                        push_determinism(&mut findings, file, toks[k].line, k, format!(
                            "iteration over hash container `{name}` in `for` loop; insertion-ordered arenas or BTreeMap are the blessed deterministic paths",
                        ));
                        break;
                    }
                    k += 1;
                }
            }
        }
        // `.sum::<f64>()` / `.product::<f64>()` outside blessed modules.
        if !blessed_fold_module
            && t.is_punct('.')
            && toks.get(i + 1).is_some_and(|m| m.is_ident("sum") || m.is_ident("product"))
            && toks.get(i + 2).is_some_and(|p| p.is_punct(':'))
            && toks.get(i + 3).is_some_and(|p| p.is_punct(':'))
            && toks.get(i + 4).is_some_and(|p| p.is_punct('<'))
            && toks.get(i + 5).is_some_and(|m| m.is_ident("f64") || m.is_ident("f32"))
        {
            push_determinism(&mut findings, file, t.line, i, format!(
                "float `.{}::<f64>()` fold outside the blessed kernel modules; f64 accumulation order is part of the byte-identity contract",
                toks[i + 1].ident().unwrap_or("?"),
            ));
        }
        // Rayon-style parallel reductions reassociate by construction.
        if !blessed_fold_module
            && t.ident().is_some_and(|id| matches!(id, "par_iter" | "into_par_iter" | "par_chunks" | "par_bridge"))
        {
            push_determinism(
                &mut findings,
                file,
                t.line,
                i,
                format!("parallel iterator `{}` reassociates reductions", t.ident().expect("checked ident above")),
            );
        }
        i += 1;
    }
    findings
}

fn push_determinism(findings: &mut Vec<Finding>, file: &SourceFile, line: u32, idx: usize, message: String) {
    let allow = file.allow_for("determinism", line);
    findings.push(Finding {
        lint: Lint::Determinism,
        file: file.rel_path.clone(),
        line,
        function: file.enclosing_function(idx).map(|f| f.name.clone()),
        message,
        allow_reason: allow.map(|a| a.reason.clone()),
    });
}

/// Panic-path lint: `.unwrap()`, `.expect(..)`, `panic!`, `todo!` in
/// non-test code. (`unwrap_or*` are distinct idents and never match.)
pub fn panic_paths(file: &SourceFile) -> Vec<Finding> {
    let toks = file.tokens();
    let mut findings = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if file.in_test_code(t.line) {
            continue;
        }
        let what = if t.is_punct('.')
            && toks.get(i + 1).is_some_and(|m| m.is_ident("unwrap"))
            && toks.get(i + 2).is_some_and(|p| p.is_punct('('))
            && toks.get(i + 3).is_some_and(|p| p.is_punct(')'))
        {
            Some(".unwrap()")
        } else if t.is_punct('.')
            && toks.get(i + 1).is_some_and(|m| m.is_ident("expect"))
            && toks.get(i + 2).is_some_and(|p| p.is_punct('('))
        {
            Some(".expect(..)")
        } else if t.ident().is_some_and(|id| id == "panic" || id == "todo")
            && toks.get(i + 1).is_some_and(|p| p.is_punct('!'))
        {
            if t.is_ident("panic") {
                Some("panic!")
            } else {
                Some("todo!")
            }
        } else {
            None
        };
        let Some(what) = what else {
            continue;
        };
        let allow = file.allow_for("panic", t.line);
        findings.push(Finding {
            lint: Lint::Panic,
            file: file.rel_path.clone(),
            line: t.line,
            function: file.enclosing_function(i).map(|f| f.name.clone()),
            message: format!("`{what}` in non-test code; return Result/H2Error or annotate the invariant"),
            allow_reason: allow.map(|a| a.reason.clone()),
        });
    }
    findings
}

/// Error-swallow lint: fallible results silently discarded in non-test
/// code. Two shapes, both token-level:
///
/// * `let _ = <expr>;` where the expression contains at least one call —
///   the classic way to drop a `Result` on the floor (a plain value
///   discard like `let _ = report;` has no call and is not flagged);
/// * `.ok()` (empty argument list) — converts a `Result` to `Option` with
///   the error branch erased, whether chained or statement-discarded.
pub fn error_swallows(file: &SourceFile) -> Vec<Finding> {
    let toks = file.tokens();
    let mut findings = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if file.in_test_code(t.line) {
            i += 1;
            continue;
        }
        // `let _ = <expr with a call>;` — scan the statement at depth 0 for
        // a `(` opening a call or macro invocation.
        if t.is_ident("let")
            && toks.get(i + 1).is_some_and(|u| u.is_ident("_"))
            && toks.get(i + 2).is_some_and(|e| e.is_punct('='))
        {
            let mut j = i + 3;
            let mut depth = 0i64;
            let mut has_call = false;
            while j < toks.len() {
                let u = &toks[j];
                if u.is_punct('(') || u.is_punct('[') || u.is_punct('{') {
                    if u.is_punct('(')
                        && j > 0
                        && (toks[j - 1].ident().is_some() || toks[j - 1].is_punct('!') || toks[j - 1].is_punct('?'))
                    {
                        has_call = true;
                    }
                    depth += 1;
                } else if u.is_punct(')') || u.is_punct(']') || u.is_punct('}') {
                    depth -= 1;
                } else if u.is_punct(';') && depth == 0 {
                    break;
                }
                j += 1;
            }
            if has_call {
                let allow = file.allow_for("error_swallow", t.line);
                findings.push(Finding {
                    lint: Lint::ErrorSwallow,
                    file: file.rel_path.clone(),
                    line: t.line,
                    function: file.enclosing_function(i).map(|f| f.name.clone()),
                    message: "`let _ = <call>;` discards a fallible result; handle the error or annotate why \
                              dropping it is safe"
                        .to_string(),
                    allow_reason: allow.map(|a| a.reason.clone()),
                });
            }
            i = j;
            continue;
        }
        // `.ok()` with an empty argument list. (`ok_or*` and other idents
        // are distinct tokens and never match.)
        if t.is_punct('.')
            && toks.get(i + 1).is_some_and(|m| m.is_ident("ok"))
            && toks.get(i + 2).is_some_and(|p| p.is_punct('('))
            && toks.get(i + 3).is_some_and(|p| p.is_punct(')'))
        {
            let allow = file.allow_for("error_swallow", t.line);
            findings.push(Finding {
                lint: Lint::ErrorSwallow,
                file: file.rel_path.clone(),
                line: t.line,
                function: file.enclosing_function(i).map(|f| f.name.clone()),
                message: "`.ok()` erases the error branch of a Result; surface the error or annotate why \
                          discarding it is safe"
                    .to_string(),
                allow_reason: allow.map(|a| a.reason.clone()),
            });
        }
        i += 1;
    }
    findings
}

/// One `&mut self` method on an `ExecutionSite` impl (or the trait itself).
#[derive(Debug, Clone)]
pub struct MutSelfMethod {
    pub impl_type: String,
    pub method: String,
    pub file: String,
    pub line: u32,
}

/// One interior-mutability field of a struct.
#[derive(Debug, Clone)]
pub struct InteriorField {
    pub struct_name: String,
    pub field: String,
    pub kind: String,
    pub file: String,
    pub line: u32,
}

const INTERIOR_TYPES: &[&str] = &[
    "Mutex",
    "RwLock",
    "RefCell",
    "Cell",
    "UnsafeCell",
    "OnceCell",
    "OnceLock",
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
];

/// Concurrency-readiness inventory: the worklist the `&self`-concurrent
/// `ExecutionSite` refactor will consume. Informational — never denied.
pub fn inventory(file: &SourceFile, methods: &mut Vec<MutSelfMethod>, fields: &mut Vec<InteriorField>) {
    let toks = file.tokens();
    // `impl ExecutionSite for Type { .. }` and `trait ExecutionSite { .. }`.
    for i in 0..toks.len() {
        let impl_type = if toks[i].is_ident("impl")
            && toks.get(i + 1).is_some_and(|t| t.is_ident("ExecutionSite"))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("for"))
        {
            toks.get(i + 3).and_then(|t| t.ident()).map(str::to_string)
        } else if toks[i].is_ident("trait") && toks.get(i + 1).is_some_and(|t| t.is_ident("ExecutionSite")) {
            Some("(trait)".to_string())
        } else {
            None
        };
        let Some(impl_type) = impl_type else {
            continue;
        };
        let Some(open) = (i..toks.len()).find(|&j| toks[j].is_punct('{')) else {
            continue;
        };
        let close = matching_brace(toks, open);
        for f in &file.functions {
            if f.sig.0 <= open || f.sig.1 > close {
                continue;
            }
            let sig = &toks[f.sig.0..f.sig.1.min(toks.len())];
            let mut_self = sig.windows(3).any(|w| {
                w[0].is_punct('&') && w[1].is_ident("mut") && w[2].is_ident("self")
                    || w[0].is_ident("mut") && w[1].is_ident("self") && w[2].is_punct(',')
            });
            if mut_self && !file.in_test_code(f.line) {
                methods.push(MutSelfMethod {
                    impl_type: impl_type.clone(),
                    method: f.name.clone(),
                    file: file.rel_path.clone(),
                    line: f.line,
                });
            }
        }
    }
    // Named-field struct declarations with interior-mutability field types.
    let mut i = 0;
    while i + 1 < toks.len() {
        if !toks[i].is_ident("struct") {
            i += 1;
            continue;
        }
        let Some(struct_name) = toks[i + 1].ident().map(str::to_string) else {
            i += 1;
            continue;
        };
        if file.in_test_code(toks[i].line) {
            i += 1;
            continue;
        }
        // Find the field block `{` (skip `;` unit and `(..)` tuple structs).
        let mut j = i + 2;
        let mut open = None;
        while j < toks.len() {
            if toks[j].is_punct('{') {
                open = Some(j);
                break;
            }
            if toks[j].is_punct(';') || toks[j].is_punct('(') {
                break;
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j;
            continue;
        };
        let close = matching_brace(toks, open);
        // Walk depth-1 fields: `name : <type tokens>` separated by commas.
        let mut k = open + 1;
        let mut depth = 0i64;
        let mut field: Option<(String, u32)> = None;
        let mut kind: Option<String> = None;
        while k < close {
            let t = &toks[k];
            if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
                depth -= 1;
            } else if depth == 0 && t.is_punct(':') && field.is_none() {
                if let Some(name) = toks.get(k - 1).and_then(|p| p.ident()) {
                    field = Some((name.to_string(), toks[k - 1].line));
                }
            } else if depth == 0 && t.is_punct(',') {
                if let (Some((name, line)), Some(kd)) = (field.take(), kind.take()) {
                    fields.push(InteriorField {
                        struct_name: struct_name.clone(),
                        field: name,
                        kind: kd,
                        file: file.rel_path.clone(),
                        line,
                    });
                }
                field = None;
                kind = None;
            } else if field.is_some() && kind.is_none() && t.ident().is_some_and(|id| INTERIOR_TYPES.contains(&id)) {
                kind = t.ident().map(str::to_string);
            }
            k += 1;
        }
        if let (Some((name, line)), Some(kd)) = (field, kind) {
            fields.push(InteriorField { struct_name, field: name, kind: kd, file: file.rel_path.clone(), line });
        }
        i = close + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::new("demo.rs".into(), "demo".into(), src)
    }

    #[test]
    fn nested_let_guards_are_reported() {
        let f = file(
            "fn f(&self) {\n    let a = self.catalog.read();\n    let b = self.part.write();\n    use_both(a, b);\n}\n",
        );
        let mut edges = Vec::new();
        let findings = lock_order(&f, &mut edges);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("demo.part"));
        assert!(findings[0].message.contains("demo.catalog"));
        assert_eq!(edges.len(), 1);
    }

    #[test]
    fn sequential_temporaries_are_clean() {
        let f = file("fn f(&self) {\n    self.names.read().len();\n    self.catalog.write().clear();\n}\n");
        let mut edges = Vec::new();
        assert!(lock_order(&f, &mut edges).is_empty());
    }

    #[test]
    fn guard_dies_at_block_end_and_on_drop() {
        let f = file(
            "fn f(&self) {\n    { let a = self.x.lock(); touch(a); }\n    let b = self.y.lock();\n    drop(b);\n    let c = self.z.lock();\n    touch(c);\n}\n",
        );
        let mut edges = Vec::new();
        assert!(lock_order(&f, &mut edges).is_empty());
    }

    #[test]
    fn same_statement_nesting_is_reported() {
        let f = file("fn f(&self) {\n    combine(self.a.lock(), self.b.lock());\n}\n");
        let mut edges = Vec::new();
        assert_eq!(lock_order(&f, &mut edges).len(), 1);
    }

    #[test]
    fn cycles_are_detected_across_functions() {
        let f = file(
            "fn ab(&self) {\n    let a = self.a.lock();\n    let b = self.b.lock();\n}\nfn ba(&self) {\n    let b = self.b.lock();\n    let a = self.a.lock();\n}\n",
        );
        let mut edges = Vec::new();
        lock_order(&f, &mut edges);
        let cycles = lock_cycles(&edges);
        assert_eq!(cycles.len(), 1);
        assert!(!cycles[0].allowed);
    }

    #[test]
    fn io_read_with_args_is_not_a_lock() {
        let f = file("fn f(&self) {\n    let g = self.state.lock();\n    file.read(&mut buf);\n    touch(g);\n}\n");
        let mut edges = Vec::new();
        assert!(lock_order(&f, &mut edges).is_empty());
    }

    #[test]
    fn hash_iteration_is_flagged_and_lookup_is_not() {
        let f = file(
            "struct S { m: HashMap<u32, u32> }\nfn f(s: &S) {\n    for (k, v) in s.m.iter() { use_kv(k, v); }\n    s.m.get(&1);\n}\n",
        );
        let findings = determinism(&f, false);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("`m`"));
    }

    #[test]
    fn f64_sum_fold_flagged_outside_blessed_modules() {
        let f = file("fn f(v: &[f64]) -> f64 {\n    v.iter().sum::<f64>()\n}\n");
        assert_eq!(determinism(&f, false).len(), 1);
        assert!(determinism(&f, true).is_empty());
    }

    #[test]
    fn panic_paths_found_outside_tests_only() {
        let f = file(
            "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n#[cfg(test)]\nmod tests {\n    fn g() { None::<u32>.unwrap(); panic!(\"boom\"); }\n}\n",
        );
        let findings = panic_paths(&f);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn unwrap_or_never_matches() {
        let f = file("fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) + x.unwrap_or_default() }\n");
        assert!(panic_paths(&f).is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses_nothing_but_marks_finding() {
        let f = file("fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // h2tap: allow(panic) — checked by caller\n}\n");
        let findings = panic_paths(&f);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].allow_reason.as_deref(), Some("checked by caller"));
    }

    #[test]
    fn discarded_call_results_and_ok_are_flagged() {
        let f =
            file("fn f(&self) {\n    let _ = self.device.free(id);\n    self.flush().ok();\n    let _ = report;\n}\n");
        let findings = error_swallows(&f);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings[0].message.contains("let _"));
        assert!(findings[1].message.contains(".ok()"));
    }

    #[test]
    fn chained_ok_is_flagged_but_ok_or_is_not() {
        let f = file("fn f(s: &str) -> Option<u32> {\n    s.parse::<u32>().ok()\n}\nfn g(x: Option<u32>) -> Result<u32, E> { x.ok_or(E) }\n");
        let findings = error_swallows(&f);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn swallow_allow_marks_but_still_reports() {
        let f = file(
            "fn f(&self) {\n    // h2tap: allow(error_swallow) — best-effort free on the teardown path\n    let _ = self.device.free(id);\n}\n#[cfg(test)]\nmod tests {\n    fn t() { let _ = helper(); go().ok(); }\n}\n",
        );
        let findings = error_swallows(&f);
        assert_eq!(findings.len(), 1, "test code must be exempt: {findings:?}");
        assert!(findings[0].is_allowed());
    }

    #[test]
    fn inventory_collects_mut_self_and_interior_fields() {
        let f = file(
            "struct Eng { state: Mutex<u32>, n: u64 }\nimpl ExecutionSite for Eng {\n    fn register_table(&mut self, t: &T) {}\n    fn label(&self) -> &str { \"e\" }\n}\n",
        );
        let mut methods = Vec::new();
        let mut fields = Vec::new();
        inventory(&f, &mut methods, &mut fields);
        assert_eq!(methods.len(), 1);
        assert_eq!(methods[0].method, "register_table");
        assert_eq!(fields.len(), 1);
        assert_eq!(fields[0].kind, "Mutex");
    }
}
