//! A minimal hand-rolled Rust lexer for the lint passes.
//!
//! Token-level only — no parse tree, no type information (the offline
//! vendor tree has no `syn`, and the lints in this crate only need token
//! patterns). Comments are consumed here; `// h2tap: allow(<lint>) —
//! <reason>` annotations are extracted into an allow map keyed by line so
//! lints can check "this line or the line above carries a reasoned allow".

use std::collections::BTreeMap;

/// Token kinds. Literal payloads are discarded — the lints only pattern
/// match identifiers and punctuation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `let`, `HashMap`, ...).
    Ident(String),
    /// A single punctuation character; multi-char operators arrive as runs.
    Punct(char),
    /// String / char / numeric literal.
    Lit,
    /// Lifetime or loop label (`'a`, `'outer`).
    Lifetime,
}

/// One token with the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub line: u32,
}

impl Token {
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }

    pub fn is_punct(&self, c: char) -> bool {
        matches!(self.kind, TokKind::Punct(p) if p == c)
    }
}

/// A parsed `// h2tap: allow(<lint>) — <reason>` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    pub lint: String,
    pub reason: String,
    pub line: u32,
}

/// The lint names an allow annotation may suppress.
pub const ALLOW_LINTS: &[&str] = &["lock_order", "determinism", "panic", "error_swallow"];

/// Lexer output: the token stream plus the allow annotations (keyed by
/// line) and any malformed `h2tap:` comments (reported as findings — a
/// reasonless or misspelt allow must not silently suppress anything).
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub allows: BTreeMap<u32, Vec<Allow>>,
    pub malformed_allows: Vec<(u32, String)>,
}

pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments. Line comments may carry h2tap allow annotations.
        if c == '/' && i + 1 < b.len() && b[i + 1] == b'/' {
            let end = src[i..].find('\n').map(|o| i + o).unwrap_or(b.len());
            parse_allow_comment(&src[i..end], line, &mut out);
            i = end;
            continue;
        }
        if c == '/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let mut depth = 1u32;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            continue;
        }
        // String literals (plain, byte, raw) before identifiers so `r#"..."#`
        // and `b"..."` are not mis-lexed as idents.
        if c == '"' {
            let start_line = line;
            i = skip_string(b, i, &mut line);
            out.tokens.push(Token { kind: TokKind::Lit, line: start_line });
            continue;
        }
        if c == 'r' || c == 'b' {
            if let Some(next) = skip_raw_or_byte_string(b, i, &mut line) {
                out.tokens.push(Token { kind: TokKind::Lit, line });
                i = next;
                continue;
            }
            if src[i..].starts_with("r#") {
                // Raw identifier `r#type` (raw string `r#"` handled above).
                let start = i + 2;
                let end = ident_end(b, start);
                if end > start {
                    out.tokens.push(Token { kind: TokKind::Ident(src[start..end].to_string()), line });
                    i = end;
                    continue;
                }
            }
        }
        // Char literal vs lifetime.
        if c == '\'' {
            if let Some((next, kind)) = lex_quote(b, i) {
                out.tokens.push(Token { kind, line });
                i = next;
                continue;
            }
            out.tokens.push(Token { kind: TokKind::Punct('\''), line });
            i += 1;
            continue;
        }
        if c.is_ascii_digit() {
            i = skip_number(b, i);
            out.tokens.push(Token { kind: TokKind::Lit, line });
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let end = ident_end(b, i);
            out.tokens.push(Token { kind: TokKind::Ident(src[i..end].to_string()), line });
            i = end;
            continue;
        }
        out.tokens.push(Token { kind: TokKind::Punct(c), line });
        i += 1;
    }
    out
}

fn ident_end(b: &[u8], start: usize) -> usize {
    let mut i = start;
    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
        i += 1;
    }
    i
}

/// Skips a `"..."` literal starting at the opening quote; returns the index
/// past the closing quote and counts embedded newlines.
fn skip_string(b: &[u8], start: usize, line: &mut u32) -> usize {
    let mut i = start + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Handles `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#` starting at the
/// `r`/`b`; returns the index past the literal, or `None` if this is not a
/// string prefix.
fn skip_raw_or_byte_string(b: &[u8], start: usize, line: &mut u32) -> Option<usize> {
    let mut i = start + 1;
    if b[start] == b'b' && i < b.len() && b[i] == b'r' {
        i += 1;
    } else if b[start] == b'b' && i < b.len() && b[i] == b'"' {
        return Some(skip_string(b, i, line));
    } else if b[start] != b'r' {
        return None;
    }
    let mut hashes = 0usize;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i >= b.len() || b[i] != b'"' {
        return None;
    }
    if hashes == 0 && b[start] == b'r' && start + 1 == i {
        // `r"..."`: raw, no escapes.
        i += 1;
        while i < b.len() {
            if b[i] == b'\n' {
                *line += 1;
            }
            if b[i] == b'"' {
                return Some(i + 1);
            }
            i += 1;
        }
        return Some(i);
    }
    // `r#"` with one or more hashes: scan for `"` followed by `hashes` `#`s.
    i += 1;
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
        }
        if b[i] == b'"' && b.len() >= i + 1 + hashes && b[i + 1..i + 1 + hashes].iter().all(|&h| h == b'#') {
            return Some(i + 1 + hashes);
        }
        i += 1;
    }
    Some(i)
}

/// Disambiguates a `'` into a char literal or a lifetime.
fn lex_quote(b: &[u8], start: usize) -> Option<(usize, TokKind)> {
    let next = *b.get(start + 1)?;
    if next == b'\\' {
        // Escaped char literal: `'\n'`, `'\''`, `'\u{1F600}'`.
        let mut i = start + 2;
        if i < b.len() && b[i] == b'u' && i + 1 < b.len() && b[i + 1] == b'{' {
            while i < b.len() && b[i] != b'}' {
                i += 1;
            }
        }
        i += 1;
        while i < b.len() && b[i] != b'\'' {
            i += 1;
        }
        return Some((i + 1, TokKind::Lit));
    }
    if next.is_ascii_alphanumeric() || next == b'_' {
        let end = ident_end(b, start + 1);
        if b.get(end) == Some(&b'\'') && end == start + 2 {
            return Some((end + 1, TokKind::Lit)); // 'a'
        }
        return Some((end, TokKind::Lifetime)); // 'a, 'static, 'outer
    }
    // Punctuation char literal: '(' , '}' , ...
    if b.get(start + 2) == Some(&b'\'') {
        return Some((start + 3, TokKind::Lit));
    }
    None
}

fn skip_number(b: &[u8], start: usize) -> usize {
    let mut i = ident_end(b, start);
    // `1.5` continues the number; `0..n` and `1.method()` do not.
    if i < b.len() && b[i] == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit() {
        i = ident_end(b, i + 1);
    }
    i
}

/// Parses `h2tap:` annotations out of a line comment. The annotation must
/// open the comment (`// h2tap: ...`); doc comments and prose that merely
/// mention the convention never count. An opening `h2tap` that is not a
/// well-formed `allow(<known-lint>) — <reason>` is recorded as malformed
/// so it surfaces as a finding instead of being silently ignored.
fn parse_allow_comment(comment: &str, line: u32, out: &mut Lexed) {
    if comment.starts_with("///") || comment.starts_with("//!") {
        return;
    }
    let body = comment.trim_start_matches('/').trim_start();
    let Some(rest) = body.strip_prefix("h2tap") else {
        return;
    };
    let rest = rest.strip_prefix(':').unwrap_or(rest).trim_start();
    let Some(args) = rest.strip_prefix("allow(") else {
        out.malformed_allows.push((line, format!("unrecognised h2tap annotation: `{}`", rest.trim())));
        return;
    };
    let Some(close) = args.find(')') else {
        out.malformed_allows.push((line, "h2tap allow annotation missing `)`".to_string()));
        return;
    };
    let lint = args[..close].trim();
    if !ALLOW_LINTS.contains(&lint) {
        out.malformed_allows
            .push((line, format!("unknown lint `{lint}` in h2tap allow (known: {})", ALLOW_LINTS.join(", "))));
        return;
    }
    let reason = args[close + 1..].trim_start_matches([' ', '\t', '\u{2014}', '\u{2013}', '-', ':', ',']).trim();
    if reason.is_empty() {
        out.malformed_allows
            .push((line, format!("h2tap allow({lint}) carries no reason — state why the site is safe")));
        return;
    }
    out.allows.entry(line).or_default().push(Allow { lint: lint.to_string(), reason: reason.to_string(), line });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_strings_and_lifetimes() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let idents: Vec<_> = l.tokens.iter().filter_map(|t| t.ident()).collect();
        assert_eq!(idents, vec!["fn", "f", "x", "str", "char"]);
        assert_eq!(l.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).count(), 2);
        assert_eq!(l.tokens.iter().filter(|t| t.kind == TokKind::Lit).count(), 1);
    }

    #[test]
    fn raw_strings_do_not_leak_tokens() {
        let l = lex("let s = r#\"lock() unwrap()\"#; let t = b\"x.lock()\";");
        assert!(l.tokens.iter().all(|t| !t.is_ident("lock") && !t.is_ident("unwrap")));
    }

    #[test]
    fn block_comments_nest_and_count_lines() {
        let l = lex("/* a /* b\n */ c\n*/ fn x() {}");
        assert_eq!(l.tokens[0].line, 3);
        assert!(l.tokens[0].is_ident("fn"));
    }

    #[test]
    fn allow_annotation_parses() {
        let l = lex("x.lock(); // h2tap: allow(lock_order) \u{2014} cache before tracer, never reversed\n");
        let allows = &l.allows[&1];
        assert_eq!(allows[0].lint, "lock_order");
        assert_eq!(allows[0].reason, "cache before tracer, never reversed");
        assert!(l.malformed_allows.is_empty());
    }

    #[test]
    fn reasonless_or_unknown_allows_are_malformed() {
        let l = lex("// h2tap: allow(panic)\n// h2tap: allow(bogus) — reason\n// h2tap: disable-all\n");
        assert!(l.allows.is_empty());
        assert_eq!(l.malformed_allows.len(), 3);
    }

    #[test]
    fn doc_comments_and_prose_mentions_never_parse_as_allows() {
        let l =
            lex("//! the `// h2tap: allow(panic)` convention\n/// see h2tap: allow(panic)\n// the h2tap: allow form\n");
        assert!(l.allows.is_empty());
        assert!(l.malformed_allows.is_empty());
    }

    #[test]
    fn char_escapes_and_ranges() {
        let l = lex("let c = '\\''; for i in 0..10 { v[i] }");
        assert!(l.tokens.iter().any(|t| t.is_ident("for")));
        assert_eq!(l.tokens.iter().filter(|t| t.is_punct('.')).count(), 2);
    }
}
