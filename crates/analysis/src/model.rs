//! Per-file token model shared by the lint passes: test-code regions,
//! function extents, and allow-annotation lookup.

use crate::lexer::{self, Allow, Lexed, Token};

/// A lexed source file with the derived structure the lints consume.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the analysis root (`crates/olap/src/cache.rs`).
    pub rel_path: String,
    /// Workspace crate directory name (`olap`), or empty in fixture mode.
    pub crate_name: String,
    pub lexed: Lexed,
    /// Inclusive line ranges covered by `#[cfg(test)]` / `#[test]` items.
    test_ranges: Vec<(u32, u32)>,
    pub functions: Vec<Function>,
}

/// One `fn` item: its name and the token extent of its body (absent for
/// bodiless trait-method declarations).
#[derive(Debug)]
pub struct Function {
    pub name: String,
    pub line: u32,
    /// Token range of the signature, from after the name to the body brace.
    pub sig: (usize, usize),
    /// Token range of the body, `{` inclusive to matching `}` inclusive.
    pub body: Option<(usize, usize)>,
}

impl SourceFile {
    pub fn new(rel_path: String, crate_name: String, src: &str) -> Self {
        let lexed = lexer::lex(src);
        let test_ranges = test_ranges(&lexed.tokens);
        let functions = functions(&lexed.tokens);
        Self { rel_path, crate_name, lexed, test_ranges, functions }
    }

    pub fn tokens(&self) -> &[Token] {
        &self.lexed.tokens
    }

    /// Is `line` inside a `#[cfg(test)]` module / `#[test]` function?
    pub fn in_test_code(&self, line: u32) -> bool {
        self.test_ranges.iter().any(|&(lo, hi)| lo <= line && line <= hi)
    }

    /// The allow annotation for `lint` on `line` or the line directly above.
    pub fn allow_for(&self, lint: &str, line: u32) -> Option<&Allow> {
        [line, line.saturating_sub(1)]
            .iter()
            .filter_map(|l| self.lexed.allows.get(l))
            .flatten()
            .find(|a| a.lint == lint)
    }

    /// The innermost function whose body contains token index `idx`.
    pub fn enclosing_function(&self, idx: usize) -> Option<&Function> {
        self.functions
            .iter()
            .filter(|f| f.body.is_some_and(|(lo, hi)| lo <= idx && idx <= hi))
            .min_by_key(|f| f.body.map(|(lo, hi)| hi - lo))
    }
}

/// Index of the `}` matching the `{` at `open` (or the last token if the
/// stream is truncated).
pub fn matching_brace(tokens: &[Token], open: usize) -> usize {
    debug_assert!(tokens[open].is_punct('{'));
    let mut depth = 0i64;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Collects the line ranges of items marked `#[cfg(test)]` or `#[test]`.
/// `#[cfg(not(test))]` does not count. The extent of the marked item runs
/// to its closing `}` (modules, functions) or `;` (statements, uses).
fn test_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && i + 1 < tokens.len() && tokens[i + 1].is_punct('[')) {
            i += 1;
            continue;
        }
        let attr_line = tokens[i].line;
        // Collect the attribute tokens between the matching brackets.
        let mut j = i + 2;
        let mut depth = 1i64;
        let mut idents: Vec<&str> = Vec::new();
        while j < tokens.len() && depth > 0 {
            if tokens[j].is_punct('[') {
                depth += 1;
            } else if tokens[j].is_punct(']') {
                depth -= 1;
            } else if let Some(id) = tokens[j].ident() {
                idents.push(id);
            }
            j += 1;
        }
        let is_test_attr = idents.contains(&"test") && !idents.contains(&"not");
        if !is_test_attr {
            i = j;
            continue;
        }
        // Skip any further attributes on the same item.
        let mut k = j;
        while k + 1 < tokens.len() && tokens[k].is_punct('#') && tokens[k + 1].is_punct('[') {
            let mut d = 1i64;
            k += 2;
            while k < tokens.len() && d > 0 {
                if tokens[k].is_punct('[') {
                    d += 1;
                } else if tokens[k].is_punct(']') {
                    d -= 1;
                }
                k += 1;
            }
        }
        // The item extends to the first top-level `;` or the brace block.
        let mut end = k;
        while end < tokens.len() {
            if tokens[end].is_punct(';') {
                break;
            }
            if tokens[end].is_punct('{') {
                end = matching_brace(tokens, end);
                break;
            }
            end += 1;
        }
        let end_line = tokens.get(end).map(|t| t.line).unwrap_or(attr_line);
        ranges.push((attr_line, end_line));
        i = end + 1;
    }
    ranges
}

/// Finds every `fn` item (free functions, methods, trait declarations).
/// `fn` pointer types (`fn(u32) -> u32`) are skipped because no identifier
/// follows the keyword.
fn functions(tokens: &[Token]) -> Vec<Function> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else {
            break;
        };
        let Some(name) = name_tok.ident() else {
            i += 1;
            continue;
        };
        // Find the body `{` at zero paren depth, or `;` for declarations.
        let mut j = i + 2;
        let mut paren = 0i64;
        let mut body = None;
        let sig_start = j;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct('(') || t.is_punct('[') {
                paren += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                paren -= 1;
            } else if paren == 0 && t.is_punct('{') {
                body = Some((j, matching_brace(tokens, j)));
                break;
            } else if paren == 0 && t.is_punct(';') {
                break;
            }
            j += 1;
        }
        out.push(Function { name: name.to_string(), line: tokens[i].line, sig: (sig_start, j), body });
        // Continue after the signature; nested fns inside the body are
        // found by the ongoing scan (i advances one token at a time only
        // past the header).
        i = j.min(tokens.len());
        if body.is_none() {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::new("lib.rs".into(), "demo".into(), src)
    }

    #[test]
    fn cfg_test_mod_lines_are_test_code() {
        let f = file("fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n");
        assert!(!f.in_test_code(1));
        assert!(f.in_test_code(2));
        assert!(f.in_test_code(4));
        assert!(!f.in_test_code(6));
    }

    #[test]
    fn cfg_not_test_is_production_code() {
        let f = file("#[cfg(not(test))]\nfn prod() {}\n");
        assert!(!f.in_test_code(2));
    }

    #[test]
    fn functions_and_bodies_are_found() {
        let f = file("impl X {\n    fn a(&self) -> u32 { 1 }\n    fn b(&mut self);\n}\nfn c() {}\n");
        let names: Vec<_> = f.functions.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert!(f.functions[0].body.is_some());
        assert!(f.functions[1].body.is_none());
    }

    #[test]
    fn nested_functions_are_both_found() {
        let f = file("fn outer() {\n    fn inner() { body(); }\n    inner();\n}\n");
        let names: Vec<_> = f.functions.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
        // The innermost function wins for attribution.
        let idx = f.tokens().iter().position(|t| t.is_ident("body")).unwrap();
        assert_eq!(f.enclosing_function(idx).unwrap().name, "inner");
    }
}
