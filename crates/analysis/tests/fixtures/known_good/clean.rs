//! Known-good fixture: the deterministic, panic-free counterparts of the
//! known-bad patterns. Expected findings: none.

use std::collections::BTreeMap;
use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    /// One lock at a time: the first guard is a statement temporary released
    /// before the second acquisition begins.
    pub fn sequential(&self) -> u32 {
        let x = self.a.lock().map(|g| *g).unwrap_or(0);
        let y = self.b.lock().map(|g| *g).unwrap_or(0);
        x + y
    }
}

/// Ordered iteration: a BTreeMap walk is deterministic by construction.
pub fn totals(m: &BTreeMap<u64, f64>) -> f64 {
    let mut total = 0.0;
    for (_k, v) in m.iter() {
        total += v;
    }
    total
}

/// An explicit left-to-right loop fold fixes the association order without
/// relying on the `Sum` impl.
pub fn fold(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for x in xs {
        acc += *x;
    }
    acc
}

/// Errors surface as values, not panics.
pub fn first(xs: &[u32]) -> Result<u32, String> {
    xs.first().copied().ok_or_else(|| "empty input".to_string())
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(super::first(&[7]).unwrap(), 7);
    }
}
