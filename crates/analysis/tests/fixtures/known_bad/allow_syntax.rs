//! Known-bad fixture: malformed escape hatches. A reasonless allow and an
//! unknown lint name are each an `allow_syntax` finding, and neither
//! suppresses the panic finding it sits above. Expected findings: two
//! allow_syntax plus two panic.

// h2tap: allow(panic)
pub fn reasonless(x: Option<u32>) -> u32 {
    x.unwrap()
}

// h2tap: allow(speed) — not a lint this analyzer knows
pub fn unknown_lint(x: Option<u32>) -> u32 {
    x.unwrap()
}
