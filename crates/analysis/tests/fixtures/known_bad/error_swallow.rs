//! Known-bad fixture for the error-swallow lint. Expected findings: two —
//! a `let _ = <call>;` that drops a `Result` on the floor, and an `.ok()`
//! that erases the error branch. The plain value discard at the end has no
//! call and must NOT be flagged.

pub fn teardown(dev: &mut Device, id: BufferId) {
    let _ = dev.memory_mut().free(id);
}

pub fn flush_quietly(sink: &mut Sink) {
    sink.flush().ok();
}

pub fn consume(report: Report) {
    let _ = report;
}
