//! Known-bad fixture: result-affecting iteration over hash containers and an
//! order-sensitive f64 fold outside the blessed kernel modules. Expected
//! findings: three hash-iteration sites plus one f64 fold.

use std::collections::{HashMap, HashSet};

pub fn totals(m: &HashMap<u64, f64>) -> f64 {
    let mut total = 0.0;
    for (_k, v) in m.iter() {
        total += v;
    }
    total
}

pub fn first_key(m: &HashMap<u64, f64>) -> Option<u64> {
    m.keys().next().copied()
}

pub fn members(s: HashSet<String>) -> Vec<String> {
    s.into_iter().collect()
}

pub fn fold(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>()
}
