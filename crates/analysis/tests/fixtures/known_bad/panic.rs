//! Known-bad fixture: panic-capable calls in non-test code. Expected
//! findings: unwrap, expect, panic!, and todo! — four in total. The unwrap
//! inside the test module must NOT be flagged.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn named(x: Option<u32>) -> u32 {
    x.expect("must be set")
}

pub fn boom(flag: bool) -> u32 {
    if flag {
        panic!("bad state");
    }
    todo!()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
