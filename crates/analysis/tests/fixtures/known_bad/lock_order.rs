//! Known-bad fixture: nested lock acquisitions in both orders, forming a
//! two-key cycle in the acquisition graph. Written in the workspace's
//! parking_lot-style idiom (guards returned directly); fixture files are
//! scanned as text, never compiled. Expected findings: two nested
//! acquisitions (`b` under `a`, `a` under `b`) plus one cycle report.

use crate::sync::Mutex;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn a_then_b(&self) -> u32 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        *ga + *gb
    }

    pub fn b_then_a(&self) -> u32 {
        let gb = self.b.lock();
        let ga = self.a.lock();
        *ga - *gb
    }
}
