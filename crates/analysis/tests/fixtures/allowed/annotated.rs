//! Allow-annotated fixture: the same violation shapes as the known-bad set,
//! each carrying a well-formed reasoned escape hatch. Expected: findings are
//! still reported (one lock_order, one determinism hash-iteration, one
//! determinism f64 fold, one panic, one error_swallow) but every one is
//! allowed, so the unannotated count is zero.

use std::collections::HashMap;

use crate::sync::Mutex;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn a_then_b(&self) -> u32 {
        let ga = self.a.lock();
        // h2tap: allow(lock_order) — ordering rule: a before b everywhere in this fixture, never reversed.
        let gb = self.b.lock();
        *ga + *gb
    }
}

pub fn count_only(m: &HashMap<u64, f64>) -> usize {
    // h2tap: allow(determinism) — only the count is observed, so iteration order cannot reach the result.
    m.iter().count()
}

pub fn fold(xs: &[f64]) -> f64 {
    // h2tap: allow(determinism) — fixture models a blessed kernel fold whose input order is pinned by the caller.
    xs.iter().sum::<f64>()
}

pub fn first(xs: &[u32]) -> u32 {
    // h2tap: allow(panic) — fixture models an invariant checked by the caller before entry.
    *xs.first().unwrap()
}

pub fn release(dev: &mut Device, id: BufferId) {
    // h2tap: allow(error_swallow) — fixture models a best-effort free on an error path where the failure is unactionable.
    let _ = dev.memory_mut().free(id);
}
