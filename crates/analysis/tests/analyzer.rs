//! End-to-end analyzer tests over the fixture corpus and the workspace
//! itself. The fixture files under `tests/fixtures/` are scanned as text by
//! the analyzer — they are never compiled — so each directory pins the exact
//! finding counts its doc comments promise: `known_bad` trips every lint
//! family, `known_good` is silent, and `allowed` reports findings that all
//! carry reasoned escape hatches.

use std::path::{Path, PathBuf};

use h2tap_analysis::report::{json_is_structurally_valid, render_json, render_summary};
use h2tap_analysis::{analyze, Analysis, Lint};

fn fixture_root(dir: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(dir)
}

fn run(dir: &str) -> Analysis {
    analyze(&fixture_root(dir)).expect("fixture directory scans")
}

#[test]
fn known_bad_trips_every_lint_family() {
    let a = run("known_bad");
    assert_eq!(a.files_scanned, 5);
    // Two nested acquisitions plus the a→b→a cycle report.
    assert_eq!(a.counts(Lint::LockOrder), (3, 0));
    // Three hash-container iteration sites plus one f64 fold.
    assert_eq!(a.counts(Lint::Determinism), (4, 0));
    // unwrap/expect/panic!/todo! in panic.rs plus the two unwraps whose
    // malformed annotations fail to suppress them in allow_syntax.rs.
    assert_eq!(a.counts(Lint::Panic), (6, 0));
    // A discarded fallible call and an `.ok()` in error_swallow.rs.
    assert_eq!(a.counts(Lint::ErrorSwallow), (2, 0));
    // A reasonless allow and an unknown-lint allow.
    assert_eq!(a.counts(Lint::AllowSyntax), (2, 0));
    assert_eq!(a.unannotated().len(), 17);
    // The acquisition graph saw both orderings and the cycle is not allowed.
    assert_eq!(a.lock_edges.len(), 2);
    assert_eq!(a.lock_cycles.len(), 1);
    assert!(!a.lock_cycles[0].allowed);
}

#[test]
fn known_bad_exempts_test_code() {
    let a = run("known_bad");
    // panic.rs has an unwrap inside #[cfg(test)]; only the four non-test
    // sites in that file may be flagged.
    let in_panic_rs = a.findings.iter().filter(|f| f.lint == Lint::Panic && f.file.ends_with("panic.rs")).count();
    assert_eq!(in_panic_rs, 4);
}

#[test]
fn known_good_is_silent() {
    let a = run("known_good");
    assert_eq!(a.files_scanned, 1);
    assert!(a.findings.is_empty(), "unexpected findings: {:?}", a.findings);
    assert!(a.lock_edges.is_empty());
    assert!(a.lock_cycles.is_empty());
}

#[test]
fn allowed_findings_are_reported_but_suppressed() {
    let a = run("allowed");
    assert_eq!(a.counts(Lint::LockOrder), (1, 1));
    assert_eq!(a.counts(Lint::Determinism), (2, 2));
    assert_eq!(a.counts(Lint::Panic), (1, 1));
    assert_eq!(a.counts(Lint::ErrorSwallow), (1, 1));
    assert_eq!(a.counts(Lint::AllowSyntax), (0, 0));
    assert!(a.unannotated().is_empty());
    // Every allow carries its reason text through to the finding.
    assert!(a.findings.iter().all(|f| f.allow_reason.as_deref().is_some_and(|r| !r.is_empty())));
}

#[test]
fn reports_render_for_every_fixture() {
    for dir in ["known_bad", "known_good", "allowed"] {
        let a = run(dir);
        let json = render_json(&a);
        assert!(json_is_structurally_valid(&json), "{dir}: malformed JSON report");
        for lint in Lint::ALL {
            assert!(json.contains(&format!("\"{}\"", lint.name())), "{dir}: missing {} summary", lint.name());
        }
        assert!(json.contains("\"execution_site_mut_self\""), "{dir}: missing inventory section");
        let summary = render_summary(&a);
        assert!(summary.contains("lock_order"), "{dir}: summary missing lint table");
    }
}

/// The CI gate in test form: the workspace itself must analyze clean — every
/// finding carries a reasoned `h2tap: allow` annotation. If this fails, run
/// `cargo run -p h2tap-analysis` for the burn-down list.
#[test]
fn workspace_has_no_unannotated_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let a = analyze(&root).expect("workspace scans");
    assert!(a.files_scanned > 50, "workspace scan looks truncated: {} files", a.files_scanned);
    let stray: Vec<String> =
        a.unannotated().iter().map(|f| format!("[{}] {}:{}: {}", f.lint.name(), f.file, f.line, f.message)).collect();
    assert!(stray.is_empty(), "unannotated findings:\n{}", stray.join("\n"));
    // The concurrency-readiness inventory is the input to the concurrent
    // execution roadmap item; it must actually see the ExecutionSite impls.
    assert!(!a.inventory.mut_self_methods.is_empty(), "inventory missed ExecutionSite impls");
    assert!(!a.inventory.interior_fields.is_empty(), "inventory missed interior-mutability fields");
}
