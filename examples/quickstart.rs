//! Quickstart: create a table, run transactions on the task-parallel (CPU)
//! archipelago and an analytical query on the data-parallel (GPU)
//! archipelago, all over one copy of the data in shared memory.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use caldera::{Caldera, CalderaConfig};
use caldera_repro as _;
use h2tap_common::{AggExpr, AttrType, PartitionId, Predicate, ScanAggQuery, Schema, Value};
use h2tap_storage::Layout;
use std::sync::Arc;

fn main() {
    // 1. Build the engine: 4 OLTP workers (= 4 partitions), the GTX 980 GPU
    //    model, PAX storage, one snapshot per analytical query.
    let mut builder = Caldera::builder(CalderaConfig::with_workers(4));
    let accounts = builder
        .create_table(
            "accounts",
            Schema::new(vec![
                h2tap_common::Attribute::new("id", AttrType::Int64),
                h2tap_common::Attribute::new("region", AttrType::Int32),
                h2tap_common::Attribute::new("balance", AttrType::Float64),
            ])
            .unwrap(),
            Layout::PAPER_PAX,
        )
        .unwrap();
    for id in 0..100_000i64 {
        builder.load(accounts, id, &[Value::Int64(id), Value::Int32((id % 50) as i32), Value::Float64(100.0)]).unwrap();
    }
    let caldera = builder.start().unwrap();

    // 2. OLTP: transfer money between two accounts. Account 1 lives in
    //    partition 1; hosting the transaction on partition 0 makes the second
    //    access remote, exercising the lock-request/grant message protocol.
    caldera
        .execute_txn_on(
            PartitionId(0),
            Arc::new(move |ctx| {
                let mut from = ctx.read_for_update(accounts, 0)?;
                let mut to = ctx.read_for_update(accounts, 1)?;
                from[2] = Value::Float64(from[2].as_f64().unwrap() - 25.0);
                to[2] = Value::Float64(to[2].as_f64().unwrap() + 25.0);
                ctx.update(accounts, 0, from)?;
                ctx.update(accounts, 1, to)
            }),
        )
        .unwrap();

    // 3. OLAP: total balance of regions 0-9, computed by the GPU model over a
    //    transactionally consistent snapshot.
    let query =
        ScanAggQuery { predicates: vec![Predicate::between(1, 0.0, 9.0)], aggregate: AggExpr::SumColumns(vec![2]) };
    let outcome = caldera.run_olap(accounts, &query).unwrap();
    println!(
        "regions 0-9 hold {:.2} across {} accounts (GPU time {}, {} kernels)",
        outcome.value,
        outcome.qualifying_rows,
        outcome.time,
        outcome.kernels.len()
    );

    let stats = caldera.shutdown();
    println!(
        "committed {} transactions, {} remote lock requests, {} pages shadow-copied, {} snapshots",
        stats.oltp.committed, stats.oltp.remote_requests, stats.cow.pages_copied, stats.snapshots_taken
    );
}
