//! Explores how storage layout and GPU data placement shape analytical
//! performance — the Figure 10/11 story in miniature, plus the Figure 1
//! transfer-mode comparison.
//!
//! ```text
//! cargo run --release --example layout_explorer
//! ```

use caldera_repro as _;
use h2tap_bench::experiments::{fig1, fig10, fig11};

fn main() {
    println!("-- Figure 1 (scaled): five filter queries over a 256 MiB integer column --");
    for row in fig1(256 << 20) {
        println!("  {:<22} {:<7} total {:>7.3}s", row.gpu, row.mode, row.total_secs);
    }

    println!("\n-- Figure 10 (scaled): SUM(col1..colN) over a host-resident (UVA) table --");
    for row in fig10(100_000, &[1, 4, 16]) {
        println!("  {:<4} {:>2} attributes  {:>8.4}s", row.layout, row.attributes, row.seconds);
    }

    println!("\n-- Figure 11 (scaled): 2 of 16 attributes, data resident in GPU memory --");
    for row in fig11(100_000) {
        println!("  {:<24} {:<4} {:>8.3} ms", row.gpu, row.layout, row.seconds * 1e3);
    }

    println!("\nTakeaways: NSM pays for non-coalesced access, PAX tracks DSM closely,");
    println!("and the NSM penalty collapses once data no longer crosses the interconnect.");
}
