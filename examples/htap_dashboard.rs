//! A realistic HTAP scenario: an order-processing workload updates the
//! lineitem table on the CPU archipelago while an analyst dashboard refreshes
//! TPC-H Q6 on the GPU archipelago, demonstrating the freshness/performance
//! trade-off of snapshot sharing (Section 5.1 of the paper).
//!
//! ```text
//! cargo run --release --example htap_dashboard
//! ```

use caldera::{Caldera, CalderaConfig, SnapshotPolicy};
use caldera_repro as _;
use h2tap_oltp::OltpConfig;
use h2tap_storage::Layout;
use h2tap_workloads::tpch::{self, q6};
use h2tap_workloads::ycsb::{YcsbConfig, YcsbGenerator};
use std::sync::Arc;
use std::time::Duration;

fn run_scenario(queries_per_snapshot: u32) {
    let workers = 4;
    let rows = 120_000u64;
    let mut config = CalderaConfig::with_workers(workers);
    config.oltp = OltpConfig::with_workers(workers);
    config.snapshot_policy = SnapshotPolicy::EveryN { queries: queries_per_snapshot };
    let mut builder = Caldera::builder(config);
    let lineitem = tpch::load_lineitem(&mut builder, Layout::PAPER_PAX, rows, 2024).unwrap();
    builder.set_generator(Arc::new(YcsbGenerator::new(YcsbConfig {
        working_set_pct: 25,
        ..YcsbConfig::paper_default(lineitem, rows, workers as u64)
    })));
    let caldera = builder.start().unwrap();

    // The "dashboard": ten Q6 refreshes while order processing runs.
    let query = q6();
    let caldera_ref = &caldera;
    let (window, olap_times) = std::thread::scope(|scope| {
        let oltp = scope.spawn(move || caldera_ref.run_oltp_window(Duration::from_millis(800)));
        let mut times = Vec::new();
        for _ in 0..10 {
            times.push(caldera_ref.run_olap(lineitem, &query).unwrap().time.as_millis_f64());
        }
        (oltp.join().unwrap().unwrap(), times)
    });
    let stats = caldera.shutdown();

    let avg: f64 = olap_times.iter().sum::<f64>() / olap_times.len() as f64;
    println!(
        "snapshot shared by {queries_per_snapshot:>2} queries | OLTP {:>8.1} KTps | Q6 avg {:>7.2} ms | \
         {} snapshots, {} pages shadow-copied",
        window.throughput_tps / 1e3,
        avg,
        stats.snapshots_taken,
        stats.cow.pages_copied,
    );
}

fn main() {
    println!("Order processing (YCSB-style updates) + Q6 dashboard on shared data\n");
    // Maximum freshness: every dashboard refresh takes a new snapshot.
    run_scenario(1);
    // Trade freshness for throughput: all ten refreshes share one snapshot.
    run_scenario(10);
}
