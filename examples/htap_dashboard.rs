//! A realistic HTAP scenario: an order-processing workload updates the
//! lineitem table on the CPU archipelago while an analyst dashboard refreshes
//! TPC-H Q6 and a brand-revenue join (`lineitem ⋈ part`, grouped by brand) on
//! the data-parallel archipelago, demonstrating the freshness/performance
//! trade-off of snapshot sharing (Section 5.1 of the paper) and per-query
//! CPU/GPU routing: streaming scans and random-access join plans can land on
//! different sites, and `HtapStats::olap_sites` makes that visible.
//!
//! ```text
//! cargo run --release --example htap_dashboard
//! ```

use caldera::{Caldera, CalderaConfig, OlapMultiGpuConfig, SnapshotPolicy};
use caldera_repro as _;
use h2tap_obs::format_latency_secs;
use h2tap_oltp::OltpConfig;
use h2tap_storage::Layout;
use h2tap_workloads::tpch::{self, q6};
use h2tap_workloads::ycsb::{YcsbConfig, YcsbGenerator};
use std::sync::Arc;
use std::time::Duration;

fn run_scenario(queries_per_snapshot: u32) {
    let workers = 4;
    let rows = 120_000u64;
    let parts = 5_000u64;
    let mut config = CalderaConfig::with_workers(workers);
    config.oltp = OltpConfig::with_workers(workers);
    // Give the data-parallel archipelago CPU cores so the scheduler has a
    // real choice between the sites, and a second-generation device pair so
    // the three-way argmin (CPU / GPU / sharded multi-GPU) is exercised.
    config.olap_cpu_cores = 8;
    config.olap_multi_gpu = Some(OlapMultiGpuConfig::new(h2tap_gpu_sim::table1_mix(2)));
    config.snapshot_policy = SnapshotPolicy::EveryN { queries: queries_per_snapshot };
    // A dashboard wants to know where its refresh time goes: turn on query
    // tracing so the last refresh can be broken into typed spans below.
    config.observability.tracing = true;
    let mut builder = Caldera::builder(config);
    let lineitem = tpch::load_lineitem(&mut builder, Layout::PAPER_PAX, rows, 2024).unwrap();
    let part = tpch::load_part(&mut builder, Layout::PAPER_PAX, parts, 2025).unwrap();
    builder.set_generator(Arc::new(YcsbGenerator::new(YcsbConfig {
        working_set_pct: 25,
        ..YcsbConfig::paper_default(lineitem, rows, workers as u64)
    })));
    let caldera = builder.start().unwrap();

    // The "dashboard": ten Q6 refreshes plus ten brand-revenue join refreshes
    // while order processing runs.
    let query = q6();
    let brand_plan = tpch::brand_revenue_plan(30);
    let caldera_ref = &caldera;
    let (window, q6_times, join_times) = std::thread::scope(|scope| {
        let oltp = scope.spawn(move || caldera_ref.run_oltp_window(Duration::from_millis(800)));
        let mut scans = Vec::new();
        let mut joins = Vec::new();
        for _ in 0..10 {
            scans.push(caldera_ref.run_olap(lineitem, &query).unwrap().time.as_millis_f64());
            joins.push(caldera_ref.run_olap_plan(lineitem, Some(part), &brand_plan).unwrap().time.as_millis_f64());
        }
        (oltp.join().unwrap().unwrap(), scans, joins)
    });
    let spans = caldera.trace_spans();
    let stats = caldera.shutdown();

    let avg = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    println!(
        "snapshot shared by {queries_per_snapshot:>2} queries | OLTP {:>8.1} KTps | Q6 avg {:>7.2} ms | \
         join avg {:>7.2} ms | {} snapshots, {} pages shadow-copied",
        window.throughput_tps / 1e3,
        avg(&q6_times),
        avg(&join_times),
        stats.snapshots_taken,
        stats.cow.pages_copied,
    );
    // The shared plan-data cache: how much of the host data path the
    // dashboard's repeated queries amortised across snapshots and sites.
    let cache = stats.plan_cache;
    println!(
        "    plan-data cache: {:>3} hits / {:>3} misses ({} invalidated) | hit rate {} | {:>7.1} KiB held, \
         {} evicted{}",
        cache.hits(),
        cache.misses(),
        cache.invalidations,
        cache.hit_rate().map_or("  n/a".to_string(), |r| format!("{:>5.1}%", r * 100.0)),
        cache.occupancy_bytes as f64 / 1024.0,
        cache.evictions,
        cache.budget_bytes.map_or(String::new(), |b| format!(" (budget {:.1} KiB)", b as f64 / 1024.0)),
    );
    // Per-site routing: where the scheduler actually placed the 20 queries,
    // and how well the continuously calibrated cost model predicted each
    // site (the placement feedback loop).
    for site in &stats.olap_sites {
        let error =
            stats.prediction_error_on(site.target).map_or("     n/a".to_string(), |e| format!("{:>7.1}%", e * 100.0));
        println!(
            "    site {:<4} ({:?}): {:>2} queries, {:>9.2} ms simulated, prediction error {}, breaker {}",
            site.label,
            site.target,
            site.queries,
            site.time.as_millis_f64(),
            error,
            site.health.state.name(),
        );
    }
    // Graceful degradation: what the resilience ladder absorbed. On this
    // fault-free run every counter should read zero — the point of printing
    // them is that a real deployment's dashboard would watch them climb.
    let res = &stats.resilience;
    println!(
        "    resilience: {} faults observed, {} in-place retries, {} site fallbacks, {} deadline timeouts",
        res.faults, res.retries, res.fallbacks, res.deadline_timeouts,
    );
    // Observability: OLAP latency percentiles over all twenty refreshes, and
    // the three slowest spans of the final join refresh — where its time went.
    if let Some(latency) = stats.metrics.histogram("olap.latency.secs") {
        println!("    olap latency: {}", format_latency_secs(latency));
    }
    if let Some(last_query) = spans.iter().map(|s| s.query).max() {
        let mut top: Vec<_> = spans.iter().filter(|s| s.query == last_query).collect();
        top.sort_by(|a, b| b.event.dur_secs.total_cmp(&a.event.dur_secs));
        let line: Vec<String> =
            top.iter().take(3).map(|s| format!("{} {:.1} us", s.event.kind.label(), s.event.dur_secs * 1e6)).collect();
        println!("    last refresh's top spans: {}", line.join(" | "));
    }
    let model = stats.calibration.model;
    println!(
        "    calibrated model: {:.1} ns/tuple | {:.2} GB/s/core | {:.1} us gpu dispatch | gpu bw scale {:.2} | \
         multi-gpu {:.1} us / scale {:.2}",
        model.cpu_per_tuple_ns,
        model.cpu_core_bandwidth_gbps,
        model.gpu_dispatch_overhead_secs * 1e6,
        model.gpu_bandwidth_scale,
        model.multi_gpu_dispatch_overhead_secs * 1e6,
        model.multi_gpu_bandwidth_scale,
    );
}

fn main() {
    println!("Order processing (YCSB-style updates) + Q6 & brand-revenue dashboard on shared data\n");
    // Maximum freshness: every dashboard refresh takes a new snapshot.
    run_scenario(1);
    // Trade freshness for throughput: the 20 dashboard queries (10 scans +
    // 10 join plans) share two snapshots instead of taking twenty.
    run_scenario(10);
}
