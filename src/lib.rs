//! Umbrella crate for the Caldera H2TAP reproduction.
//!
//! This crate only re-exports the workspace members so that the repository's
//! top-level `examples/` and `tests/` can exercise the whole system through
//! one dependency. Applications should depend on the individual crates
//! (`caldera`, `h2tap-storage`, ...) directly.

pub use caldera;
pub use h2tap_baselines as baselines;
pub use h2tap_bench as bench;
pub use h2tap_common as common;
pub use h2tap_gpu_sim as gpu_sim;
pub use h2tap_mpmsg as mpmsg;
pub use h2tap_olap as olap;
pub use h2tap_oltp as oltp;
pub use h2tap_scheduler as scheduler;
pub use h2tap_storage as storage;
pub use h2tap_workloads as workloads;
