//! Integration tests for the placement feedback loop: an engine whose cost
//! model is seeded with deliberately wrong constants must recalibrate itself
//! from the site times its own dispatches report — through the production
//! `run_olap` path, with no out-of-band measurements — and placement must
//! converge to the forced-site oracle.

use caldera::{Caldera, CalderaConfig, DataPlacement, OlapMultiGpuConfig, OlapTarget, SnapshotPolicy};
use h2tap_common::TableId;
use h2tap_gpu_sim::GpuSpec;
use h2tap_scheduler::CostModel;
use h2tap_storage::Layout;
use h2tap_workloads::tpch::{self, q6};

/// An engine with 24 data-parallel CPU cores whose placement model starts
/// from the drifted constants of the issue: per-tuple CPU cost 2x too high,
/// GPU dispatch overhead 5x too low. One lineitem table per requested size.
fn miscalibrated_engine(sizes: &[u64]) -> (Caldera, Vec<TableId>) {
    let mut config = CalderaConfig::with_workers(1);
    config.olap_cpu_cores = 24;
    config.snapshot_policy = SnapshotPolicy::Manual;
    let truth = config.initial_cost_model();
    config.cost_model_seed = Some(CostModel {
        cpu_per_tuple_ns: truth.cpu_per_tuple_ns * 2.0,
        gpu_dispatch_overhead_secs: truth.gpu_dispatch_overhead_secs / 5.0,
        ..truth
    });
    let mut builder = Caldera::builder(config);
    let tables = sizes
        .iter()
        .map(|&rows| {
            tpch::load_lineitem_named(&mut builder, &format!("lineitem_{rows}"), Layout::Dsm, rows, 7).unwrap()
        })
        .collect();
    (builder.start().unwrap(), tables)
}

/// The tentpole behaviour end to end: mis-tuned constants misplace queries at
/// first, and the loop self-corrects *from routed queries alone* — placement
/// flips mid-workload once the model has caught up with the measured sites.
#[test]
fn placement_self_corrects_from_wrong_constants_via_routed_queries_only() {
    let (caldera, tables) = miscalibrated_engine(&[5_000, 100_000]);
    let (small, large) = (tables[0], tables[1]);
    let query = q6();

    // With the seeded constants the small scan misroutes to the GPU: the
    // 5x-low dispatch overhead hides the GPU's fixed cost and the 2x-high
    // per-tuple cost inflates the CPU estimate.
    let first = caldera.run_olap(small, &query).unwrap();
    assert_eq!(first.site, OlapTarget::Gpu, "seed constants must misplace the small scan");

    // Keep answering the mixed stream through the production dispatch path.
    let mut small_sites = Vec::new();
    let mut large_sites = Vec::new();
    for _ in 0..40 {
        small_sites.push(caldera.run_olap(small, &query).unwrap().site);
        large_sites.push(caldera.run_olap(large, &query).unwrap().site);
    }

    // Placement flipped mid-workload: the tail of the stream routes the
    // small scan to the CPU (its measured oracle) while the large scan stays
    // on the GPU.
    assert!(small_sites[15..].iter().all(|&s| s == OlapTarget::Cpu), "small scans must flip to CPU: {small_sites:?}");
    assert!(large_sites[15..].iter().all(|&s| s == OlapTarget::Gpu), "large scans must stay on GPU: {large_sites:?}");
    assert!(
        small_sites.first() != small_sites.last(),
        "the flip must happen mid-workload, not be the static choice: {small_sites:?}"
    );

    // The model moved from the wrong seeds toward the sites' true constants,
    // and the oracle (forced runs) agrees with the final placements.
    let model = caldera.cost_model();
    assert!((model.cpu_per_tuple_ns - 93.0).abs() / 93.0 < 0.05, "per-tuple {}", model.cpu_per_tuple_ns);
    assert!(model.gpu_dispatch_overhead_secs > 2e-5, "dispatch overhead {}", model.gpu_dispatch_overhead_secs);
    let cpu = caldera.run_olap_on(small, &query, OlapTarget::Cpu).unwrap();
    let gpu = caldera.run_olap_on(small, &query, OlapTarget::Gpu).unwrap();
    assert!(cpu.time < gpu.time, "oracle check: CPU {} must beat GPU {} on the small scan", cpu.time, gpu.time);
    let stats = caldera.shutdown();
    assert!(stats.calibration.observations >= 40);
    for site in [OlapTarget::Cpu, OlapTarget::Gpu] {
        let err = stats.prediction_error_on(site).unwrap();
        assert!(err < 0.10, "steady-state {site:?} prediction error {err} must be under 10%");
    }
}

/// Regression for the forced-dispatch contract: `run_olap_on` observations
/// still feed the calibrator (they are ground truth about their site) but a
/// forced run never recurses into the placement heuristic — it executes
/// exactly where it was forced, even when the calibrated model disagrees.
#[test]
fn forced_site_runs_feed_calibration_but_never_recurse_into_placement() {
    let (caldera, tables) = miscalibrated_engine(&[5_000]);
    let small = tables[0];
    let query = q6();

    for _ in 0..15 {
        let out = caldera.run_olap_on(small, &query, OlapTarget::Gpu).unwrap();
        assert_eq!(out.site, OlapTarget::Gpu, "a forced run must never be redirected");
    }
    let report = caldera.calibration_report();
    assert_eq!(report.site(OlapTarget::Gpu).unwrap().observations, 15, "forced runs must feed calibration");
    assert_eq!(report.site(OlapTarget::Gpu).unwrap().forced_observations, 15, "and be reported as forced");
    assert_eq!(report.site(OlapTarget::Cpu).unwrap().observations, 0);
    // The forced observations recalibrated the GPU model (its 5x-low
    // dispatch overhead is gone) …
    assert!(report.model.gpu_dispatch_overhead_secs > 2e-5);
    // … so the *next routed* query sees through the GPU's fixed cost and
    // places the small scan on the CPU — proof the forced runs calibrated
    // placement without ever being placed themselves.
    let routed = caldera.run_olap(small, &query).unwrap();
    assert_eq!(routed.site, OlapTarget::Cpu);
    let stats = caldera.shutdown();
    assert_eq!(stats.olap_queries_on(OlapTarget::Gpu), 15);
    assert_eq!(stats.olap_queries_on(OlapTarget::Cpu), 1);
}

/// Mirror of the placement-recovery test for the multi-GPU site: its
/// bandwidth scale is seeded 3x too high, so large scans misroute to the
/// single GPU at first even though the sharded mix is the measured oracle.
/// Forced-site runs feed the calibrator ground truth about every site; the
/// per-site multi-GPU scale converges and routed placement recovers the
/// forced-site oracle to >= 90% agreement within the first 50 observations.
#[test]
fn multi_gpu_bandwidth_scale_recalibrates_and_recovers_the_oracle() {
    let mut config = CalderaConfig::with_workers(1);
    config.olap_cpu_cores = 24;
    config.snapshot_policy = SnapshotPolicy::Manual;
    config.olap_device.placement = DataPlacement::DeviceResident;
    config.olap_multi_gpu = Some(
        OlapMultiGpuConfig::new(vec![GpuSpec::gtx_980(), GpuSpec::gtx_980()])
            .with_placement(DataPlacement::DeviceResident),
    );
    let truth = config.initial_cost_model();
    config.cost_model_seed =
        Some(CostModel { multi_gpu_bandwidth_scale: truth.multi_gpu_bandwidth_scale * 3.0, ..truth });
    let mut builder = Caldera::builder(config);
    let small = tpch::load_lineitem_named(&mut builder, "lineitem_small", Layout::Dsm, 5_000, 7).unwrap();
    let large = tpch::load_lineitem_named(&mut builder, "lineitem_large", Layout::Dsm, 150_000, 7).unwrap();
    let caldera = builder.start().unwrap();
    let query = q6();

    // The 3x-wrong scale hides the mix's real speed: the first large routed
    // query must misroute away from the multi-GPU site.
    let first = caldera.run_olap(large, &query).unwrap();
    assert_ne!(first.site, OlapTarget::MultiGpu, "the 3x-wrong seed must misplace the first large scan");

    // Answer a mixed stream; each iteration also runs the forced-site oracle
    // (which doubles as ground-truth calibration input for every site).
    // Observations per iteration: 1 routed + 3 forced = 4.
    let mut decisions: Vec<bool> = Vec::new();
    for i in 0..32 {
        let table = if i % 2 == 0 { large } else { small };
        let routed = caldera.run_olap(table, &query).unwrap();
        let cpu = caldera.run_olap_on(table, &query, OlapTarget::Cpu).unwrap();
        let gpu = caldera.run_olap_on(table, &query, OlapTarget::Gpu).unwrap();
        let multi = caldera.run_olap_on(table, &query, OlapTarget::MultiGpu).unwrap();
        let oracle = [(cpu.time, OlapTarget::Cpu), (gpu.time, OlapTarget::Gpu), (multi.time, OlapTarget::MultiGpu)]
            .into_iter()
            .min_by_key(|(t, _)| *t)
            .map(|(_, s)| s)
            .unwrap();
        decisions.push(routed.site == oracle);
        // All sites stay byte-identical while the model moves.
        assert_eq!(cpu.value.to_bits(), multi.value.to_bits());
    }
    // 4 observations per iteration: "within 50 observations" = after the
    // first 13 iterations (52 observations), agreement must be >= 90%.
    let tail = &decisions[13..];
    let agreement = tail.iter().filter(|&&a| a).count() as f64 / tail.len() as f64;
    assert!(agreement >= 0.9, "oracle agreement after 50 observations was {agreement}: {decisions:?}");

    // The per-site scale moved from its 3x-wrong seed toward the truth, the
    // single-GPU scale calibrated independently, and the tail routes large
    // scans back to the mix.
    let model = caldera.cost_model();
    assert!(model.multi_gpu_bandwidth_scale < 2.0, "scale must fall from 3.0, got {}", model.multi_gpu_bandwidth_scale);
    let routed = caldera.run_olap(large, &query).unwrap();
    assert_eq!(routed.site, OlapTarget::MultiGpu, "calibrated placement must recover the mix for large scans");
    let stats = caldera.shutdown();
    let row = stats.calibration.site(OlapTarget::MultiGpu).unwrap();
    assert!(row.observations >= 32, "forced multi runs must feed the calibrator");
    assert!(stats.prediction_error_on(OlapTarget::MultiGpu).unwrap() < 0.15);
}

/// The OOM fallback records its observation against the site that actually
/// answered: a GPU-placed query that falls back to the CPU is a CPU
/// observation, so the calibrator never attributes CPU times to the GPU
/// model.
#[test]
fn oom_fallback_observations_are_attributed_to_the_cpu() {
    let mut config = CalderaConfig::with_workers(1);
    config.olap_cpu_cores = 2;
    config.olap_device.placement = h2tap_olap::DataPlacement::DeviceResident;
    config.olap_device.gpu.mem_capacity_mib = 1; // everything OOMs
    config.snapshot_policy = SnapshotPolicy::Manual;
    let mut builder = Caldera::builder(config);
    let table = tpch::load_lineitem(&mut builder, Layout::Dsm, 60_000, 7).unwrap();
    let caldera = builder.start().unwrap();
    let out = caldera.run_olap(table, &q6()).unwrap();
    assert_eq!(out.site, OlapTarget::Cpu, "device-resident table cannot fit: CPU answers");
    let report = caldera.calibration_report();
    assert_eq!(report.site(OlapTarget::Cpu).unwrap().observations, 1);
    assert_eq!(report.site(OlapTarget::Gpu).unwrap().observations, 0);
    caldera.shutdown();
}
