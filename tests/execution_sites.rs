//! Integration tests for heterogeneous OLAP dispatch: the CPU and GPU
//! execution sites must be interchangeable answer-wise, and the scheduler's
//! placement decision must route real queries to the site the paper's
//! heuristic predicts.

use caldera::{Caldera, CalderaConfig, DataPlacement, OlapMultiGpuConfig, OlapTarget, SnapshotPolicy};
use h2tap_common::{AggExpr, PartitionId, Predicate, ScanAggQuery, Value};
use h2tap_storage::Layout;
use h2tap_workloads::tpch::{self, q6};
use std::sync::Arc;

fn caldera_with_lineitem(mut config: CalderaConfig, layout: Layout, rows: u64) -> (Caldera, h2tap_common::TableId) {
    config.snapshot_policy = SnapshotPolicy::Manual;
    let mut builder = Caldera::builder(config);
    let table = tpch::load_lineitem(&mut builder, layout, rows, 7).unwrap();
    (builder.start().unwrap(), table)
}

/// CPU and GPU sites must return identical `value` / `qualifying_rows` for
/// the same snapshot, whatever the storage layout.
#[test]
fn cpu_and_gpu_sites_agree_on_q6_across_all_layouts() {
    let rows = 40_000;
    let expected = tpch::q6_reference(rows, 7);
    for layout in [Layout::Nsm, Layout::Dsm, Layout::PAPER_PAX] {
        let (caldera, table) = caldera_with_lineitem(CalderaConfig::with_workers(1), layout, rows);
        let query = q6();
        let gpu = caldera.run_olap_on(table, &query, OlapTarget::Gpu).unwrap();
        let cpu = caldera.run_olap_on(table, &query, OlapTarget::Cpu).unwrap();
        assert_eq!(gpu.site, OlapTarget::Gpu);
        assert_eq!(cpu.site, OlapTarget::Cpu);
        assert!((gpu.value - expected).abs() < 1e-6, "{layout:?}: gpu {} vs reference {expected}", gpu.value);
        assert_eq!(gpu.value, cpu.value, "{layout:?}");
        assert_eq!(gpu.qualifying_rows, cpu.qualifying_rows, "{layout:?}");
        let stats = caldera.shutdown();
        assert_eq!(stats.olap_queries_on(OlapTarget::Gpu), 1);
        assert_eq!(stats.olap_queries_on(OlapTarget::Cpu), 1);
    }
}

/// Sites also agree under predicates + sum aggregates on a hand-built table
/// that mixes attribute types.
#[test]
fn sites_agree_on_filtered_aggregates_over_mixed_types() {
    let mut config = CalderaConfig::with_workers(2);
    config.snapshot_policy = SnapshotPolicy::Manual;
    let mut builder = Caldera::builder(config);
    let schema = h2tap_common::Schema::new(vec![
        h2tap_common::Attribute::new("k", h2tap_common::AttrType::Int64),
        h2tap_common::Attribute::new("bucket", h2tap_common::AttrType::Int32),
        h2tap_common::Attribute::new("price", h2tap_common::AttrType::Float64),
    ])
    .unwrap();
    let table = builder.create_table("orders", schema, Layout::PAPER_PAX).unwrap();
    for k in 0..10_000i64 {
        builder
            .load(table, k, &[Value::Int64(k), Value::Int32((k % 10) as i32), Value::Float64(k as f64 * 0.5)])
            .unwrap();
    }
    let caldera = builder.start().unwrap();
    let query =
        ScanAggQuery { predicates: vec![Predicate::between(1, 2.0, 6.0)], aggregate: AggExpr::SumProduct(1, 2) };
    let gpu = caldera.run_olap_on(table, &query, OlapTarget::Gpu).unwrap();
    let cpu = caldera.run_olap_on(table, &query, OlapTarget::Cpu).unwrap();
    assert_eq!(gpu.value, cpu.value);
    assert_eq!(gpu.qualifying_rows, cpu.qualifying_rows);
    assert_eq!(gpu.qualifying_rows, 5_000);
    caldera.shutdown();
}

/// Scan answers are **byte-identical** across sites — the same chunked-merge
/// contract join plans have — even over float data whose sums are not
/// exactly representable, where any difference in chunking or merge order
/// would change low-order bits. Q6's SumProduct over generated f64 prices
/// and discounts is exactly such a sum.
#[test]
fn scan_answers_are_byte_identical_across_sites_and_thread_counts() {
    let mut config = CalderaConfig::with_workers(1);
    config.olap_cpu_cores = 8;
    // > 2 chunks of PLAN_CHUNK_ROWS so the parallel scan really splits.
    let (caldera, table) = caldera_with_lineitem(config, Layout::Dsm, 150_000);
    let query = q6();
    let gpu = caldera.run_olap_on(table, &query, OlapTarget::Gpu).unwrap();
    let cpu = caldera.run_olap_on(table, &query, OlapTarget::Cpu).unwrap();
    assert_eq!(gpu.value.to_bits(), cpu.value.to_bits(), "gpu {} vs cpu {}", gpu.value, cpu.value);
    assert_eq!(gpu.qualifying_rows, cpu.qualifying_rows);

    // The CPU scan actually runs on the scoped thread pool, and the thread
    // count cannot perturb a single bit of the answer.
    let snap = caldera.database().snapshot();
    let frozen = snap.table(table).unwrap();
    let sequential = h2tap_olap::CpuOlapEngine::archipelago_default(1).execute_scan(frozen, &query).unwrap();
    let parallel = h2tap_olap::CpuOlapEngine::archipelago_default(16).execute_scan(frozen, &query).unwrap();
    assert_eq!(sequential.threads_used, 1);
    assert!(parallel.threads_used > 1, "a multi-chunk scan on 16 cores must use the pool");
    assert_eq!(sequential.value.to_bits(), parallel.value.to_bits());
    assert_eq!(sequential.value.to_bits(), cpu.value.to_bits(), "standalone engine agrees with the site");
    assert_eq!(sequential.qualifying_rows, parallel.qualifying_rows);
    assert_eq!(sequential.rows_scanned, parallel.rows_scanned);
    assert_eq!(sequential.chunks_skipped, parallel.chunks_skipped);
    let _ = caldera.database().release_snapshot(&snap);
    caldera.shutdown();
}

/// Zonemap skipping (the vectorised profile) still cannot change the f64
/// answer relative to a profile that scans everything: a skipped chunk's
/// partial is exactly zero.
#[test]
fn zonemap_skipping_preserves_bitwise_equality_on_clustered_predicates() {
    let mut config = CalderaConfig::with_workers(1);
    config.olap_cpu_cores = 8;
    let (caldera, table) = caldera_with_lineitem(config, Layout::Dsm, 150_000);
    // ORDERKEY is loaded in ascending order, so its zonemaps are tight.
    let query = ScanAggQuery {
        predicates: vec![Predicate::between(tpch::columns::ORDERKEY, 0.0, 9_999.0)],
        aggregate: AggExpr::SumProduct(tpch::columns::EXTENDEDPRICE, tpch::columns::DISCOUNT),
    };
    let snap = caldera.database().snapshot();
    let frozen = snap.table(table).unwrap();
    let skipping =
        h2tap_olap::CpuOlapEngine::new(h2tap_olap::CpuScanProfile::vectorized()).execute_scan(frozen, &query).unwrap();
    let full = h2tap_olap::CpuOlapEngine::new(h2tap_olap::CpuScanProfile::materializing())
        .execute_scan(frozen, &query)
        .unwrap();
    assert!(skipping.chunks_skipped > 0, "clustered predicate must skip chunks");
    assert_eq!(full.chunks_skipped, 0);
    assert_eq!(skipping.value.to_bits(), full.value.to_bits());
    assert_eq!(skipping.qualifying_rows, full.qualifying_rows);
    let _ = caldera.database().release_snapshot(&snap);
    caldera.shutdown();
}

/// With a third (multi-GPU) site configured, all three sites remain
/// byte-identical on Q6 through the production dispatch path — the same
/// chunked-merge contract, now across a heterogeneous device mix.
#[test]
fn all_three_sites_agree_byte_identically_on_q6() {
    let mut config = CalderaConfig::with_workers(1);
    config.olap_cpu_cores = 8;
    config.olap_multi_gpu = Some(OlapMultiGpuConfig::new(h2tap_gpu_sim::table1_mix(3)));
    let (caldera, table) = caldera_with_lineitem(config, Layout::Dsm, 150_000);
    let query = q6();
    let cpu = caldera.run_olap_on(table, &query, OlapTarget::Cpu).unwrap();
    let gpu = caldera.run_olap_on(table, &query, OlapTarget::Gpu).unwrap();
    let multi = caldera.run_olap_on(table, &query, OlapTarget::MultiGpu).unwrap();
    assert_eq!(multi.site, OlapTarget::MultiGpu);
    assert_eq!(cpu.value.to_bits(), gpu.value.to_bits());
    assert_eq!(cpu.value.to_bits(), multi.value.to_bits());
    assert_eq!(cpu.qualifying_rows, multi.qualifying_rows);
    let stats = caldera.shutdown();
    assert_eq!(stats.olap_sites.len(), 3);
    assert_eq!(stats.olap_queries_on(OlapTarget::MultiGpu), 1);
}

/// A tiny scan over host-resident data routes to the CPU site: the fixed GPU
/// dispatch cost dominates and the snapshot already lives in host DRAM.
#[test]
fn tiny_host_resident_scan_routes_to_cpu() {
    let mut config = CalderaConfig::with_workers(2);
    config.olap_cpu_cores = 8;
    let (caldera, table) = caldera_with_lineitem(config, Layout::Dsm, 2_000);
    let out = caldera.run_olap(table, &q6()).unwrap();
    assert_eq!(out.site, OlapTarget::Cpu);
    let stats = caldera.shutdown();
    assert_eq!(stats.olap_queries_on(OlapTarget::Cpu), 1);
    assert_eq!(stats.olap_queries_on(OlapTarget::Gpu), 0);
}

/// A large device-resident scan routes to the GPU site: device memory
/// bandwidth dwarfs what the archipelago's CPU cores can stream.
#[test]
fn large_device_resident_scan_routes_to_gpu() {
    let mut config = CalderaConfig::with_workers(2);
    config.olap_cpu_cores = 8;
    config.olap_device.placement = DataPlacement::DeviceResident;
    let (caldera, table) = caldera_with_lineitem(config, Layout::Dsm, 150_000);
    let out = caldera.run_olap(table, &q6()).unwrap();
    assert_eq!(out.site, OlapTarget::Gpu);
    let stats = caldera.shutdown();
    assert_eq!(stats.olap_queries_on(OlapTarget::Gpu), 1);
    assert_eq!(stats.olap_queries_on(OlapTarget::Cpu), 0);
}

fn caldera_with_lineitem_and_part(
    mut config: CalderaConfig,
    layout: Layout,
    rows: u64,
    parts: u64,
) -> (Caldera, h2tap_common::TableId, h2tap_common::TableId) {
    config.snapshot_policy = SnapshotPolicy::Manual;
    let mut builder = Caldera::builder(config);
    let lineitem = tpch::load_lineitem(&mut builder, layout, rows, 7).unwrap();
    let part = tpch::load_part(&mut builder, layout, parts, 11).unwrap();
    (builder.start().unwrap(), lineitem, part)
}

/// CPU and GPU sites must return **byte-identical** join/group-by results
/// for the same snapshot, whatever the storage layout of either table —
/// the cross-site equivalence contract of the relational operator subsystem.
#[test]
fn cpu_and_gpu_sites_agree_on_join_group_by_across_all_layouts() {
    let rows = 30_000;
    let parts = 2_000;
    let max_size = 25;
    for layout in [Layout::Nsm, Layout::Dsm, Layout::PAPER_PAX] {
        let (caldera, lineitem, part) =
            caldera_with_lineitem_and_part(CalderaConfig::with_workers(2), layout, rows, parts);
        for plan in [tpch::brand_revenue_plan(max_size), tpch::partkey_revenue_plan(max_size)] {
            let gpu = caldera.run_olap_plan_on(lineitem, Some(part), &plan, OlapTarget::Gpu).unwrap();
            let cpu = caldera.run_olap_plan_on(lineitem, Some(part), &plan, OlapTarget::Cpu).unwrap();
            assert_eq!(gpu.site, OlapTarget::Gpu);
            assert_eq!(cpu.site, OlapTarget::Cpu);
            // Byte-identical: same keys, bit-equal f64 aggregates, same counts.
            assert_eq!(gpu.groups, cpu.groups, "{layout:?}");
            assert_eq!(gpu.qualifying_rows, cpu.qualifying_rows, "{layout:?}");
            assert!(!gpu.groups.is_empty(), "{layout:?}: the join must produce groups at this scale");
        }
        caldera.shutdown();
    }
}

/// The engines' group results agree with an independent scalar evaluation of
/// the same generated data (tolerance compare: the reference accumulates in
/// generation order, the engines in chunked storage order).
#[test]
fn join_group_by_matches_the_scalar_reference() {
    let rows = 30_000;
    let parts = 2_000;
    let max_size = 25;
    let (caldera, lineitem, part) =
        caldera_with_lineitem_and_part(CalderaConfig::with_workers(1), Layout::Dsm, rows, parts);
    for by_partkey in [false, true] {
        let plan = if by_partkey { tpch::partkey_revenue_plan(max_size) } else { tpch::brand_revenue_plan(max_size) };
        let out = caldera.run_olap_plan(lineitem, Some(part), &plan).unwrap();
        let reference = tpch::brand_revenue_reference(rows, parts, max_size, 7, 11, by_partkey);
        assert_eq!(out.groups.len(), reference.len(), "by_partkey={by_partkey}");
        for (got, want) in out.groups.iter().zip(&reference) {
            assert_eq!(got.key, want.key);
            assert_eq!(got.rows, want.rows);
            assert!(
                (got.values[0] - want.values[0]).abs() < 1e-6,
                "group {}: engine {} reference {}",
                got.key,
                got.values[0],
                want.values[0]
            );
        }
    }
    caldera.shutdown();
}

/// Identical byte-level results must survive the CPU site's thread pool:
/// migrating cores mid-workload changes the parallel schedule but not a bit
/// of the answer.
#[test]
fn cpu_plan_results_are_stable_under_core_migration() {
    let mut config = CalderaConfig::with_workers(8);
    config.olap_cpu_cores = 1;
    let (caldera, lineitem, part) = caldera_with_lineitem_and_part(config, Layout::Dsm, 150_000, 2_000);
    let plan = tpch::brand_revenue_plan(30);
    let single = caldera.run_olap_plan_on(lineitem, Some(part), &plan, OlapTarget::Cpu).unwrap();
    for core in 0..6 {
        caldera
            .scheduler()
            .migrate_core(
                core,
                h2tap_scheduler::ArchipelagoKind::TaskParallel,
                h2tap_scheduler::ArchipelagoKind::DataParallel,
            )
            .unwrap();
    }
    let pooled = caldera.run_olap_plan_on(lineitem, Some(part), &plan, OlapTarget::Cpu).unwrap();
    assert_eq!(single.groups, pooled.groups);
    assert!(pooled.time < single.time, "7 cores {} should beat 1 core {}", pooled.time, single.time);
    caldera.shutdown();
}

/// The dispatch loop keeps working across snapshot refreshes and OLTP
/// updates: both sites see the same fresh data after a refresh.
#[test]
fn sites_stay_consistent_across_snapshot_refreshes() {
    let mut config = CalderaConfig::with_workers(2);
    config.snapshot_policy = SnapshotPolicy::Manual;
    let mut builder = Caldera::builder(config);
    let table = builder
        .create_table("accounts", h2tap_common::Schema::homogeneous("c", 2, h2tap_common::AttrType::Int64), Layout::Dsm)
        .unwrap();
    for k in 0..1_000i64 {
        builder.load(table, k, &[Value::Int64(k), Value::Int64(1)]).unwrap();
    }
    let caldera = builder.start().unwrap();
    let query = ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![1]));
    assert_eq!(caldera.run_olap_on(table, &query, OlapTarget::Cpu).unwrap().value, 1_000.0);
    assert_eq!(caldera.run_olap_on(table, &query, OlapTarget::Gpu).unwrap().value, 1_000.0);
    caldera
        .execute_txn_on(
            PartitionId(0),
            Arc::new(move |ctx| {
                let mut rec = ctx.read_for_update(table, 0)?;
                rec[1] = Value::Int64(501);
                ctx.update(table, 0, rec)
            }),
        )
        .unwrap();
    // Stale until the snapshot refreshes, on both sites.
    assert_eq!(caldera.run_olap_on(table, &query, OlapTarget::Cpu).unwrap().value, 1_000.0);
    caldera.refresh_snapshot().unwrap();
    assert_eq!(caldera.run_olap_on(table, &query, OlapTarget::Cpu).unwrap().value, 1_500.0);
    assert_eq!(caldera.run_olap_on(table, &query, OlapTarget::Gpu).unwrap().value, 1_500.0);
    let stats = caldera.shutdown();
    assert_eq!(stats.olap_queries, 5);
    assert_eq!(stats.snapshots_taken, 2);
}
