//! The vectorized host data path and the snapshot-keyed plan-data cache:
//! property tests pinning the explicit-SIMD batch execution bit-identical
//! to both the retained scalar batch path and the row-at-a-time reference
//! across layouts, chunk- and lane-boundary row counts and adversarial
//! values (NaN-bit group keys, negative zero), plus cache semantics through
//! the production engine (epoch invalidation, hit/miss accounting,
//! cross-site sharing).

use caldera::{Caldera, CalderaConfig, OlapMultiGpuConfig, OlapTarget, SnapshotPolicy};
use h2tap_common::rng::SplitMixRng;
use h2tap_common::{
    AggExpr, AttrType, Attribute, JoinSpec, OlapPlan, PartitionId, PlanColumn, Predicate, ScanAggQuery, Schema, Value,
    PLAN_CHUNK_ROWS,
};
use h2tap_olap::operators as ops;
use h2tap_olap::PlanDataCache;
use h2tap_storage::{Database, Layout, SnapshotTable};
use std::sync::Arc;

/// A 4-column table (Int64 key, Int64 fk, Float64 val, Int32 bucket) with
/// `rows` rows of seeded pseudo-random data. A slice of the Float64 column
/// is salted with a quiet NaN and negative zeros: their raw bit patterns
/// must flow through predicates, aggregates and group keys without
/// perturbing cross-path bit-equality.
///
/// Deliberately a *single* NaN payload: summing one quiet NaN payload is
/// bit-deterministic, but when *two different* NaN payloads meet in one
/// `+`, IEEE 754 leaves the result payload unspecified and compilers may
/// commute the operands — so multi-payload NaN *aggregation* is outside
/// every bit-identity contract. Multi-payload NaNs as *group keys* (raw
/// bits, no arithmetic) are covered by
/// [`nan_bit_patterns_are_distinct_group_keys`].
fn random_table(layout: Layout, rows: u64, seed: u64) -> SnapshotTable {
    let db = Database::new(2);
    let schema = Schema::new(vec![
        Attribute::new("k", AttrType::Int64),
        Attribute::new("fk", AttrType::Int64),
        Attribute::new("val", AttrType::Float64),
        Attribute::new("bucket", AttrType::Int32),
    ])
    .unwrap();
    let t = db.create_table("t", schema, layout).unwrap();
    let mut rng = SplitMixRng::new(seed);
    for i in 0..rows {
        let val = match rng.next_below(16) {
            0 | 1 => f64::from_bits(0x7ff8_0000_0000_0001), // quiet NaN, one payload
            2 => -0.0,
            _ => (rng.next_f64() - 0.5) * 2e6,
        };
        db.insert(
            PartitionId((i % 2) as u32),
            t,
            &[
                Value::Int64(i as i64),
                Value::Int64(rng.next_below(97) as i64),
                Value::Float64(val),
                Value::Int32(rng.next_below(13) as i32),
            ],
        )
        .unwrap();
    }
    db.snapshot().table(t).unwrap().clone()
}

/// Row counts covering the chunk- and lane-boundary cases: empty, one row,
/// SIMD-lane edges (below/at/above the 4- and 8-lane widths), batch-edge
/// sizes, one chunk exactly, an exact multiple of chunks, and a multiple
/// plus a partial tail.
fn boundary_row_counts() -> Vec<u64> {
    vec![
        0,
        1,
        5,
        8,
        9,
        17,
        1023,
        1024,
        1025,
        1031,
        PLAN_CHUNK_ROWS as u64,
        2 * PLAN_CHUNK_ROWS as u64,
        2 * PLAN_CHUNK_ROWS as u64 + 17,
    ]
}

fn assert_scan_bit_identical(mat: &ops::MaterializedColumns, query: &ScanAggQuery, label: &str) {
    for i in 0..mat.chunk_count() {
        let range = mat.chunk_range(i);
        let fast = ops::scan_chunk(mat, query, range.clone());
        let scalar = ops::scan_chunk_scalar(mat, query, range.clone());
        let slow = ops::scan_chunk_reference(mat, query, range.clone());
        assert_eq!(fast.qualifying, slow.qualifying, "{label} chunk {i}");
        assert_eq!(fast.value.to_bits(), slow.value.to_bits(), "{label} chunk {i}: {} vs {}", fast.value, slow.value);
        assert_eq!(fast.qualifying, scalar.qualifying, "{label} chunk {i}: simd vs scalar batch");
        assert_eq!(
            fast.value.to_bits(),
            scalar.value.to_bits(),
            "{label} chunk {i}: simd {} vs scalar batch {}",
            fast.value,
            scalar.value
        );
        // The zonemap-stats answer must agree with the O(chunk) recompute,
        // and a skip must truly be a zero partial.
        let can = ops::scan_chunk_can_qualify(mat, &query.predicates, i);
        assert_eq!(can, ops::scan_chunk_can_qualify_reference(mat, &query.predicates, range), "{label} chunk {i}");
        if !can {
            assert_eq!(fast, ops::ScanChunkPartial::default(), "{label} chunk {i}: skipped chunk must be zero");
        }
    }
}

fn assert_plan_bit_identical(
    mat: &ops::MaterializedColumns,
    plan: &OlapPlan,
    hash: Option<&ops::JoinHashTable>,
    label: &str,
) {
    let fast: Vec<_> =
        (0..mat.chunk_count()).map(|i| ops::process_chunk(mat, plan, hash, mat.chunk_range(i))).collect();
    let scalar: Vec<_> =
        (0..mat.chunk_count()).map(|i| ops::process_chunk_scalar(mat, plan, hash, mat.chunk_range(i))).collect();
    let slow: Vec<_> =
        (0..mat.chunk_count()).map(|i| ops::process_chunk_reference(mat, plan, hash, mat.chunk_range(i))).collect();
    for (pair, other) in [("simd vs reference", &slow), ("simd vs scalar batch", &scalar)] {
        for (i, (f, s)) in fast.iter().zip(other).enumerate() {
            assert_eq!(f.selected, s.selected, "{label} chunk {i} ({pair})");
            assert_eq!(f.joined, s.joined, "{label} chunk {i} ({pair})");
            assert_eq!(f.groups.len(), s.groups.len(), "{label} chunk {i} ({pair})");
            for ((fk, fa), (sk, sa)) in f.groups.iter().zip(&s.groups) {
                assert_eq!(fk, sk, "{label} chunk {i} ({pair}): group keys");
                assert_eq!(fa.rows, sa.rows, "{label} chunk {i} ({pair}) group {fk:#x}");
                for (x, y) in fa.values.iter().zip(&sa.values) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{label} chunk {i} ({pair}) group {fk:#x}: {x} vs {y}");
                }
            }
        }
    }
    // The merged plan answers are then trivially bit-identical too. (Bit
    // comparison, not `==`: a bit-identical NaN aggregate still fails f64
    // `PartialEq`.)
    let (fg, ft) = ops::merge_partials(plan, fast);
    let (sg, st) = ops::merge_partials(plan, slow);
    assert_eq!(fg.len(), sg.len(), "{label}: merged groups");
    for (f, s) in fg.iter().zip(&sg) {
        assert_eq!((f.key, f.rows), (s.key, s.rows), "{label}");
        for (x, y) in f.values.iter().zip(&s.values) {
            assert_eq!(x.to_bits(), y.to_bits(), "{label} group {:#x}: {x} vs {y}", f.key);
        }
    }
    assert_eq!(ft.joined, st.joined, "{label}");
}

/// Vectorized scans are bit-identical to the row-at-a-time reference for
/// random queries over random tables in every layout, at every
/// chunk-boundary row count.
#[test]
fn property_vectorized_scans_match_the_reference_bitwise() {
    let mut rng = SplitMixRng::new(0x5CA1);
    for (case, &rows) in boundary_row_counts().iter().enumerate() {
        let layout = [Layout::Dsm, Layout::Nsm, Layout::PAPER_PAX][case % 3];
        let table = random_table(layout, rows, 0xBA5E + case as u64);
        for q in 0..6 {
            let mut predicates = Vec::new();
            for col in [0usize, 1, 2, 3] {
                if rng.next_below(2) == 0 {
                    let lo = (rng.next_f64() - 0.5) * 1e6;
                    predicates.push(Predicate::between(col, lo, lo + rng.next_f64() * 1e6));
                }
            }
            let aggregate = match rng.next_below(3) {
                0 => AggExpr::SumProduct(2, 1),
                1 => AggExpr::SumColumns(vec![0, 2, 3]),
                _ => AggExpr::Count,
            };
            let query = ScanAggQuery { predicates, aggregate };
            let mat = ops::MaterializedColumns::new(&table, query.columns_accessed()).unwrap();
            assert_scan_bit_identical(&mat, &query, &format!("{layout:?}/{rows} rows/query {q}"));
        }
    }
}

/// Vectorized plan execution (filter → PK join → group-by) is bit-identical
/// to the reference, including NaN-bit group keys: grouping by the salted
/// Float64 column groups by *raw bit pattern*, so the two NaN payloads and
/// the negative zero land in distinct groups — identically on both paths.
#[test]
fn property_vectorized_plans_match_the_reference_bitwise() {
    // Build table: key = 0..97 (covers every fk), size = key % 8,
    // class = key % 5.
    let db = Database::new(1);
    let schema = Schema::new(vec![
        Attribute::new("key", AttrType::Int64),
        Attribute::new("size", AttrType::Int32),
        Attribute::new("class", AttrType::Int32),
    ])
    .unwrap();
    let b = db.create_table("dim", schema, Layout::Dsm).unwrap();
    for i in 0..97i64 {
        db.insert(PartitionId(0), b, &[Value::Int64(i), Value::Int32((i % 8) as i32), Value::Int32((i % 5) as i32)])
            .unwrap();
    }
    let build = db.snapshot().table(b).unwrap().clone();
    let join = JoinSpec { probe_column: 1, build_key: 0, build_predicates: vec![Predicate::between(1, 0.0, 5.0)] };
    for (case, &rows) in boundary_row_counts().iter().enumerate() {
        if rows == 0 {
            continue; // plans reject empty probe tables on every path
        }
        let layout = [Layout::PAPER_PAX, Layout::Dsm, Layout::Nsm][case % 3];
        let probe = random_table(layout, rows, 0xF00D + case as u64);
        let plans = [
            // Grouped by the NaN-salted Float64 probe column.
            OlapPlan {
                predicates: vec![Predicate::between(0, 0.0, 1e9)],
                join: None,
                group_by: Some(PlanColumn::Probe(2)),
                aggregates: vec![AggExpr::SumColumns(vec![0]), AggExpr::Count],
            },
            // Join + build-side grouping.
            OlapPlan {
                predicates: vec![],
                join: Some(join.clone()),
                group_by: Some(PlanColumn::Build(2)),
                aggregates: vec![AggExpr::SumProduct(2, 0), AggExpr::Count],
            },
            // Join, globally aggregated (NaN values flow through the sum).
            OlapPlan {
                predicates: vec![Predicate::between(3, 0.0, 6.0)],
                join: Some(join.clone()),
                group_by: None,
                aggregates: vec![AggExpr::SumColumns(vec![2])],
            },
        ];
        for (p, plan) in plans.iter().enumerate() {
            let has_build = plan.join.is_some();
            let hash = has_build.then(|| {
                let group_col = ops::check_plan(plan, true).unwrap();
                ops::build_hash_table(&build, plan.join.as_ref().unwrap(), group_col).unwrap()
            });
            let mat = ops::MaterializedColumns::new(&probe, plan.probe_columns_accessed()).unwrap();
            assert_plan_bit_identical(&mat, plan, hash.as_ref(), &format!("{layout:?}/{rows} rows/plan {p}"));
        }
    }
}

/// NaN-bit group keys occupy distinct groups by payload, and both NaN
/// payloads plus -0.0 and +0.0 are distinguishable raw-bit groups.
#[test]
fn nan_bit_patterns_are_distinct_group_keys() {
    let db = Database::new(1);
    let schema =
        Schema::new(vec![Attribute::new("g", AttrType::Float64), Attribute::new("v", AttrType::Int64)]).unwrap();
    let t = db.create_table("t", schema, Layout::Dsm).unwrap();
    let keys = [f64::from_bits(0x7ff8_0000_0000_0001), f64::from_bits(0xfff8_0000_0000_0002), 0.0, -0.0, 1.5];
    for (i, &g) in keys.iter().cycle().take(50).enumerate() {
        db.insert(PartitionId(0), t, &[Value::Float64(g), Value::Int64(i as i64)]).unwrap();
    }
    let table = db.snapshot().table(t).unwrap().clone();
    let plan = OlapPlan {
        predicates: vec![],
        join: None,
        group_by: Some(PlanColumn::Probe(0)),
        aggregates: vec![AggExpr::SumColumns(vec![1]), AggExpr::Count],
    };
    let mat = ops::MaterializedColumns::new(&table, plan.probe_columns_accessed()).unwrap();
    let fast = ops::process_chunk(&mat, &plan, None, mat.chunk_range(0));
    let slow = ops::process_chunk_reference(&mat, &plan, None, mat.chunk_range(0));
    assert_eq!(fast, slow);
    assert_eq!(fast.groups.len(), 5, "two NaN payloads, +0.0, -0.0 and 1.5 are five raw-bit groups");
    assert_eq!(fast.groups.values().map(|g| g.rows).sum::<u64>(), 50);
}

/// All three execution sites stay byte-identical through the production
/// dispatch path with vectorization *and* the shared plan-data cache
/// enabled — including on NaN-salted data. The repeated queries are served
/// from the cache (hits recorded in `HtapStats`), and the answers do not
/// drift from the first, uncached dispatch.
#[test]
fn three_sites_stay_byte_identical_with_caching_enabled() {
    let mut config = CalderaConfig::with_workers(2);
    config.olap_cpu_cores = 4;
    config.olap_multi_gpu = Some(OlapMultiGpuConfig::new(h2tap_gpu_sim::table1_mix(3)));
    config.snapshot_policy = SnapshotPolicy::Manual;
    let mut builder = Caldera::builder(config);
    let schema = Schema::new(vec![
        Attribute::new("k", AttrType::Int64),
        Attribute::new("fk", AttrType::Int64),
        Attribute::new("val", AttrType::Float64),
    ])
    .unwrap();
    let t = builder.create_table("fact", schema, Layout::Dsm).unwrap();
    let mut rng = SplitMixRng::new(42);
    for i in 0..150_000i64 {
        let val = if rng.next_below(20) == 0 { -0.0 } else { rng.next_f64() * 1e3 };
        builder.load(t, i, &[Value::Int64(i), Value::Int64(i % 40), Value::Float64(val)]).unwrap();
    }
    let dim = builder.create_table("dim", Schema::homogeneous("d", 2, AttrType::Int64), Layout::Dsm).unwrap();
    for i in 0..40i64 {
        builder.load(dim, i, &[Value::Int64(i), Value::Int64(i % 4)]).unwrap();
    }
    let caldera = builder.start().unwrap();
    // The scan touches {0, 1, 2}, the plan {1, 2}: two distinct
    // derivations, so the hit/miss accounting below is exact.
    let query =
        ScanAggQuery { predicates: vec![Predicate::between(0, 0.0, 120_000.0)], aggregate: AggExpr::SumProduct(1, 2) };
    let plan = OlapPlan {
        predicates: vec![],
        join: Some(JoinSpec { probe_column: 1, build_key: 0, build_predicates: vec![] }),
        group_by: Some(PlanColumn::Build(1)),
        aggregates: vec![AggExpr::SumColumns(vec![2]), AggExpr::Count],
    };
    let sites = [OlapTarget::Gpu, OlapTarget::Cpu, OlapTarget::MultiGpu];
    let scan_answers: Vec<u64> =
        sites.iter().map(|&s| caldera.run_olap_on(t, &query, s).unwrap().value.to_bits()).collect();
    assert!(scan_answers.windows(2).all(|w| w[0] == w[1]), "{scan_answers:?}");
    let plan_answers: Vec<_> =
        sites.iter().map(|&s| caldera.run_olap_plan_on(t, Some(dim), &plan, s).unwrap().groups).collect();
    assert!(plan_answers.windows(2).all(|w| w[0] == w[1]));
    let stats = caldera.shutdown();
    // 6 dispatches, 2 distinct derivations (scan columns; probe columns +
    // hash table): everything after the first dispatch of each shape hit.
    assert_eq!(stats.plan_cache.column_misses, 2);
    assert_eq!(stats.plan_cache.hash_misses, 1);
    assert!(stats.plan_cache.hits() >= 6, "repeat dispatches must hit: {:?}", stats.plan_cache);
}

/// A cached derivation from one snapshot epoch is never served to a later
/// one: an OLTP update plus a per-query snapshot policy must be visible to
/// every following query, with the cache invalidated on each refresh.
#[test]
fn per_query_snapshots_never_see_stale_cached_data() {
    let mut config = CalderaConfig::with_workers(2);
    config.snapshot_policy = SnapshotPolicy::PerQuery;
    let mut builder = Caldera::builder(config);
    let t = builder.create_table("acct", Schema::homogeneous("c", 2, AttrType::Int64), Layout::Dsm).unwrap();
    for i in 0..5_000i64 {
        builder.load(t, i, &[Value::Int64(i), Value::Int64(1)]).unwrap();
    }
    let caldera = builder.start().unwrap();
    let q = ScanAggQuery::aggregate_only(AggExpr::SumColumns(vec![1]));
    let mut expected = 5_000.0;
    for step in 0..5 {
        let out = caldera.run_olap(t, &q).unwrap();
        assert_eq!(out.value, expected, "step {step}: a stale cached column must never be served");
        caldera
            .execute_txn(Arc::new(move |ctx| {
                let mut rec = ctx.read_for_update(t, step)?;
                rec[1] = Value::Int64(rec[1].as_i64().unwrap() + 10);
                ctx.update(t, step, rec)
            }))
            .unwrap();
        expected += 10.0;
    }
    let stats = caldera.shutdown();
    // Per-query snapshots: every query re-derives (no hits), and each
    // refresh invalidated the previous derivation.
    assert_eq!(stats.plan_cache.column_hits, 0);
    assert_eq!(stats.plan_cache.column_misses, 5);
    assert!(stats.plan_cache.invalidations >= 4);
}

/// Standalone-cache semantics: shared prepared plan data is the same
/// instance across sites' requests, and epoch keys keep generations apart.
#[test]
fn plan_data_cache_shares_instances_until_the_epoch_moves() {
    let db = Database::new(1);
    let t = db.create_table("t", Schema::homogeneous("c", 2, AttrType::Int64), Layout::Dsm).unwrap();
    for i in 0..2_000i64 {
        db.insert(PartitionId(0), t, &[Value::Int64(i), Value::Int64(i)]).unwrap();
    }
    let s1 = db.snapshot();
    let cache = PlanDataCache::new();
    let a = cache.materialized(s1.table(t).unwrap(), vec![0, 1]).unwrap();
    let b = cache.materialized(s1.table(t).unwrap(), vec![0, 1]).unwrap();
    assert!(Arc::ptr_eq(&a, &b));
    let s2 = db.snapshot();
    let c = cache.materialized(s2.table(t).unwrap(), vec![0, 1]).unwrap();
    assert!(!Arc::ptr_eq(&a, &c), "a new epoch is a new derivation");
    let stats = cache.stats();
    assert_eq!((stats.column_hits, stats.column_misses), (1, 2));
    assert_eq!(stats.invalidations, 1, "the superseded epoch was evicted");
}
