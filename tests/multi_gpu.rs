//! Cross-site equivalence harness for the multi-GPU execution site.
//!
//! The byte-identity contract: for the same snapshot, the CPU site (any
//! thread count), the single-GPU site (any placement) and the multi-GPU site
//! (any device mix, any shard count) must return **bit-equal** f64 answers
//! and identical group rows — the fixed 64Ki-row chunking and the ascending
//! chunk-ordered merge are the IR contract that makes the heterogeneous
//! archipelago swappable. These tests sweep the matrix the issue pins:
//! every layout, fast+slow device mixes, shard counts 1..=5, thread counts,
//! and the boundary tables (empty, one chunk, exact chunk multiple).

use caldera::{Caldera, CalderaConfig, DataPlacement, OlapMultiGpuConfig, OlapTarget, SnapshotPolicy};
use h2tap_common::{AggExpr, AttrType, PartitionId, Predicate, ScanAggQuery, Schema, Value, PLAN_CHUNK_ROWS};
use h2tap_gpu_sim::{table1_mix, AccessMode, GpuDevice, GpuSpec};
use h2tap_olap::{CpuOlapEngine, ExecutionSite, GpuOlapEngine, MultiGpuOlapEngine};
use h2tap_storage::{Database, Layout, SnapshotTable};
use h2tap_workloads::tpch::{self, q6};

/// A float-heavy table whose sums are not exactly representable, so any
/// deviation in chunking or merge order flips low-order bits: col0 = k,
/// col1 = k % 10, col2 = k * 0.1.
fn float_table(layout: Layout, rows: i64) -> SnapshotTable {
    let db = Database::new(1);
    let schema = Schema::new(vec![
        h2tap_common::Attribute::new("k", AttrType::Int64),
        h2tap_common::Attribute::new("bucket", AttrType::Int32),
        h2tap_common::Attribute::new("price", AttrType::Float64),
    ])
    .unwrap();
    let t = db.create_table("t", schema, layout).unwrap();
    for k in 0..rows {
        db.insert(PartitionId(0), t, &[Value::Int64(k), Value::Int32((k % 10) as i32), Value::Float64(k as f64 * 0.1)])
            .unwrap();
    }
    let snap = db.snapshot();
    snap.table(t).unwrap().clone()
}

fn bucket_query() -> ScanAggQuery {
    ScanAggQuery { predicates: vec![Predicate::between(1, 0.0, 6.0)], aggregate: AggExpr::SumProduct(1, 2) }
}

fn multi_engine(n: usize, placement: DataPlacement) -> MultiGpuOlapEngine {
    MultiGpuOlapEngine::from_specs(table1_mix(n), placement).unwrap()
}

/// One scan answer (value bits, qualifying rows) from any site, or `None`
/// when the site rejected the query (empty tables must be rejected by every
/// site identically).
fn scan_bits(site: &mut dyn ExecutionSite, table: &SnapshotTable, query: &ScanAggQuery) -> Option<(u64, u64)> {
    let handle = site.register_table(table, "t").unwrap();
    let out = site.execute(handle, table, query).ok()?;
    Some((out.value.to_bits(), out.qualifying_rows))
}

/// The full equivalence matrix over one (layout, rows) cell: CPU at 1 and 8
/// threads, single GPU over UVA and device-resident, multi-GPU at the given
/// shard counts over UVA (plus one device-resident mix).
fn assert_matrix_cell(layout: Layout, rows: i64, shard_counts: &[usize]) {
    let table = float_table(layout, rows);
    let query = bucket_query();
    let mut answers: Vec<(String, Option<(u64, u64)>)> = Vec::new();
    for threads in [1u32, 8] {
        let mut cpu = CpuOlapEngine::archipelago_default(threads);
        answers.push((format!("cpu x{threads}"), scan_bits(&mut cpu, &table, &query)));
    }
    for (placement, label) in
        [(DataPlacement::Host(AccessMode::Uva), "uva"), (DataPlacement::DeviceResident, "resident")]
    {
        let mut gpu = GpuOlapEngine::new(GpuDevice::new(GpuSpec::gtx_980()), placement);
        answers.push((format!("gpu {label}"), scan_bits(&mut gpu, &table, &query)));
    }
    for &n in shard_counts {
        let mut multi = multi_engine(n, DataPlacement::Host(AccessMode::Uva));
        answers.push((format!("multi-gpu x{n} uva"), scan_bits(&mut multi, &table, &query)));
    }
    let mut resident_mix = multi_engine(2, DataPlacement::DeviceResident);
    answers.push(("multi-gpu x2 resident".into(), scan_bits(&mut resident_mix, &table, &query)));

    let (first_label, first) = &answers[0];
    if rows == 0 {
        for (label, answer) in &answers {
            assert!(answer.is_none(), "{layout:?}/{rows}: {label} must reject the empty table");
        }
        return;
    }
    for (label, answer) in &answers[1..] {
        assert_eq!(answer, first, "{layout:?}/{rows}: {label} disagrees with {first_label}");
    }
}

#[test]
fn scan_answers_are_byte_identical_across_every_site_and_shard_count() {
    // The full shard sweep on DSM, including the boundary row counts:
    // empty, one chunk, an exact chunk multiple, and a partial tail chunk.
    for rows in [0i64, 1_000, (PLAN_CHUNK_ROWS * 2) as i64, 200_000] {
        assert_matrix_cell(Layout::Dsm, rows, &[1, 2, 3, 4, 5]);
    }
}

#[test]
fn scan_answers_are_byte_identical_on_nsm_and_pax_layouts() {
    for layout in [Layout::Nsm, Layout::PAPER_PAX] {
        assert_matrix_cell(layout, 200_000, &[1, 3, 5]);
    }
}

#[test]
fn join_group_by_plans_are_byte_identical_across_sites_and_mixes() {
    let plan = h2tap_common::OlapPlan {
        predicates: vec![Predicate::between(0, 0.0, 149_999.0)],
        join: Some(h2tap_common::JoinSpec {
            probe_column: 1,
            build_key: 0,
            build_predicates: vec![Predicate::between(1, 0.0, 4.0)],
        }),
        group_by: Some(h2tap_common::PlanColumn::Build(2)),
        aggregates: vec![AggExpr::SumProduct(1, 2), AggExpr::Count],
    };
    for layout in [Layout::Nsm, Layout::Dsm, Layout::PAPER_PAX] {
        let probe = float_table(layout, 180_000);
        let db = Database::new(1);
        let schema = Schema::new(vec![
            h2tap_common::Attribute::new("key", AttrType::Int64),
            h2tap_common::Attribute::new("size", AttrType::Int32),
            h2tap_common::Attribute::new("brand", AttrType::Int32),
        ])
        .unwrap();
        let t = db.create_table("dim", schema, layout).unwrap();
        for i in 0..10i64 {
            db.insert(PartitionId(0), t, &[Value::Int64(i), Value::Int32(i as i32), Value::Int32((i % 3) as i32)])
                .unwrap();
        }
        let build = db.snapshot().table(t).unwrap().clone();

        let cpu = CpuOlapEngine::archipelago_default(8);
        let cp = cpu.register_table(&probe, "fact").unwrap();
        let cb = cpu.register_table(&build, "dim").unwrap();
        let reference = cpu.execute_plan(cp, &probe, Some((cb, &build)), &plan).unwrap();
        assert!(!reference.groups.is_empty());

        let gpu = GpuOlapEngine::new(GpuDevice::new(GpuSpec::gtx_980()), DataPlacement::Host(AccessMode::Uva));
        let gp = gpu.register_table(&probe, "fact").unwrap();
        let gb = gpu.register_table(&build, "dim").unwrap();
        let gpu_out = gpu.execute_plan(gp, &probe, Some((gb, &build)), &plan).unwrap();
        assert_eq!(gpu_out.groups, reference.groups, "{layout:?}: single GPU");

        for n in [2usize, 4] {
            let multi = multi_engine(n, DataPlacement::Host(AccessMode::Uva));
            let mp = multi.register_table(&probe, "fact").unwrap();
            let mb = multi.register_table(&build, "dim").unwrap();
            let out = multi.execute_plan(mp, &probe, Some((mb, &build)), &plan).unwrap();
            assert_eq!(out.groups, reference.groups, "{layout:?}: {n}-device mix");
            assert_eq!(out.qualifying_rows, reference.qualifying_rows, "{layout:?}: {n}-device mix");
        }
    }
}

// ---------------------------------------------------------------------------
// Through the production engine: config, dispatch, routing, stats, fallback.
// ---------------------------------------------------------------------------

fn caldera_with_multi(
    mut config: CalderaConfig,
    mix: Vec<GpuSpec>,
    placement: DataPlacement,
    rows: u64,
) -> (Caldera, h2tap_common::TableId) {
    config.snapshot_policy = SnapshotPolicy::Manual;
    config.olap_multi_gpu = Some(OlapMultiGpuConfig::new(mix).with_placement(placement));
    let mut builder = Caldera::builder(config);
    let table = tpch::load_lineitem(&mut builder, Layout::Dsm, rows, 7).unwrap();
    (builder.start().unwrap(), table)
}

/// The acceptance scenario: a large device-resident scan routes to the
/// multi-GPU site, and neither the CPU nor the single GPU beats it there.
#[test]
fn large_device_resident_scans_route_to_the_multi_gpu_site() {
    let mut config = CalderaConfig::with_workers(2);
    config.olap_cpu_cores = 8;
    config.olap_device.placement = DataPlacement::DeviceResident;
    let (caldera, table) = caldera_with_multi(
        config,
        vec![GpuSpec::gtx_980(), GpuSpec::gtx_980()],
        DataPlacement::DeviceResident,
        150_000,
    );
    let routed = caldera.run_olap(table, &q6()).unwrap();
    assert_eq!(routed.site, OlapTarget::MultiGpu, "two sharded devices must win the large resident scan");
    // Forced-site oracle: the multi-GPU site is genuinely the fastest, and
    // all three answers are byte-identical.
    let cpu = caldera.run_olap_on(table, &q6(), OlapTarget::Cpu).unwrap();
    let gpu = caldera.run_olap_on(table, &q6(), OlapTarget::Gpu).unwrap();
    let multi = caldera.run_olap_on(table, &q6(), OlapTarget::MultiGpu).unwrap();
    assert!(multi.time < gpu.time, "multi {} must beat single {}", multi.time, gpu.time);
    assert!(multi.time < cpu.time, "multi {} must beat cpu {}", multi.time, cpu.time);
    assert_eq!(multi.value.to_bits(), cpu.value.to_bits());
    assert_eq!(multi.value.to_bits(), gpu.value.to_bits());
    assert_eq!(multi.qualifying_rows, cpu.qualifying_rows);
    let stats = caldera.shutdown();
    assert_eq!(stats.olap_sites.len(), 3, "the third site is first-class in the stats");
    assert_eq!(stats.olap_queries_on(OlapTarget::MultiGpu), 2);
    assert_eq!(stats.olap_queries_on(OlapTarget::Gpu), 1);
    assert_eq!(stats.olap_queries_on(OlapTarget::Cpu), 1);
}

/// Tables sized to an exact chunk multiple (no partial tail chunk) stay
/// byte-identical through the production dispatch path.
#[test]
fn exact_chunk_multiple_tables_agree_through_dispatch() {
    let mut config = CalderaConfig::with_workers(1);
    config.olap_cpu_cores = 4;
    config.snapshot_policy = SnapshotPolicy::Manual;
    config.olap_multi_gpu = Some(OlapMultiGpuConfig::new(table1_mix(3)));
    let mut builder = Caldera::builder(config);
    let table = tpch::load_lineitem_chunks(&mut builder, "lineitem", Layout::Dsm, 2, 7).unwrap();
    let caldera = builder.start().unwrap();
    let cpu = caldera.run_olap_on(table, &q6(), OlapTarget::Cpu).unwrap();
    let gpu = caldera.run_olap_on(table, &q6(), OlapTarget::Gpu).unwrap();
    let multi = caldera.run_olap_on(table, &q6(), OlapTarget::MultiGpu).unwrap();
    assert_eq!(cpu.value.to_bits(), gpu.value.to_bits());
    assert_eq!(cpu.value.to_bits(), multi.value.to_bits());
    assert_eq!(cpu.qualifying_rows, multi.qualifying_rows);
    caldera.shutdown();
}

/// Forcing the multi-GPU target on an engine without one is a configuration
/// error, not a panic.
#[test]
fn forcing_an_unconfigured_multi_gpu_site_errors() {
    let mut config = CalderaConfig::with_workers(1);
    config.snapshot_policy = SnapshotPolicy::Manual;
    let mut builder = Caldera::builder(config);
    let table = tpch::load_lineitem(&mut builder, Layout::Dsm, 1_000, 7).unwrap();
    let caldera = builder.start().unwrap();
    assert!(caldera.run_olap_on(table, &q6(), OlapTarget::MultiGpu).is_err());
    // Routed queries never try to use the absent site.
    assert!(caldera.run_olap(table, &q6()).is_ok());
    caldera.shutdown();
}

/// A device mix whose members cannot hold their shards OOMs at registration
/// and falls back to the CPU site — with no stranded device memory, so the
/// next query repeats the attempt cleanly.
#[test]
fn multi_gpu_oom_falls_back_to_the_cpu_site() {
    let mut tiny = GpuSpec::gtx_980();
    tiny.mem_capacity_mib = 1;
    let mut config = CalderaConfig::with_workers(1);
    config.olap_cpu_cores = 2;
    // The single GPU is also too small, so whichever GPU-family site the
    // heuristic picks, the query must still be answered by the CPU.
    config.olap_device.placement = DataPlacement::DeviceResident;
    config.olap_device.gpu.mem_capacity_mib = 1;
    let (caldera, table) = caldera_with_multi(config, vec![tiny.clone(), tiny], DataPlacement::DeviceResident, 200_000);
    for _ in 0..2 {
        let out = caldera.run_olap(table, &q6()).unwrap();
        assert_eq!(out.site, OlapTarget::Cpu);
    }
    // Forcing the multi site surfaces the real error instead of falling back.
    assert!(caldera.run_olap_on(table, &q6(), OlapTarget::MultiGpu).is_err());
    let stats = caldera.shutdown();
    assert_eq!(stats.olap_queries_on(OlapTarget::Cpu), 2);
    assert_eq!(stats.olap_queries_on(OlapTarget::MultiGpu), 0);
}

/// The min-per-shard free-bytes semantics at the engine surface: the site
/// reports the smallest device's headroom, never a (saturating) sum.
#[test]
fn multi_gpu_free_bytes_is_the_min_across_the_mix() {
    let mut small = GpuSpec::gtx_980();
    small.mem_capacity_mib = 32;
    let eng = MultiGpuOlapEngine::from_specs(vec![GpuSpec::gtx_980(), small], DataPlacement::DeviceResident).unwrap();
    assert_eq!(ExecutionSite::free_device_bytes(&eng), Some(32 * 1024 * 1024));
}
