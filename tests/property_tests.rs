//! Property-based tests over the core data structures and invariants.

use h2tap_common::{AttrType, Epoch, PartitionId, Schema, TableId, Value};
use h2tap_gpu_sim::{coalescing_efficiency, AccessPattern};
use h2tap_oltp::{LockMode, LockTable, TxnToken};
use h2tap_storage::{decode_record, encode_record, Database, Layout};
use proptest::prelude::*;

fn arbitrary_value(ty: AttrType) -> BoxedStrategy<Value> {
    match ty {
        AttrType::Int32 => any::<i32>().prop_map(Value::Int32).boxed(),
        AttrType::Int64 => any::<i64>().prop_map(Value::Int64).boxed(),
        AttrType::Date => any::<i32>().prop_map(Value::Date).boxed(),
        AttrType::Float64 => (-1e12f64..1e12f64).prop_map(Value::Float64).boxed(),
        AttrType::Str => "[a-z]{0,12}".prop_map(|s| Value::Str(s.into())).boxed(),
    }
}

proptest! {
    /// Encoding a record to cells and back is lossless for every fixed-width
    /// type (strings are hashed by design, so they are excluded here).
    #[test]
    fn record_codec_roundtrips(
        ints in proptest::collection::vec(any::<i64>(), 1..6),
        floats in proptest::collection::vec(-1e12f64..1e12f64, 1..6),
    ) {
        let mut attrs = Vec::new();
        let mut values = Vec::new();
        for (i, v) in ints.iter().enumerate() {
            attrs.push(h2tap_common::Attribute::new(format!("i{i}"), AttrType::Int64));
            values.push(Value::Int64(*v));
        }
        for (i, v) in floats.iter().enumerate() {
            attrs.push(h2tap_common::Attribute::new(format!("f{i}"), AttrType::Float64));
            values.push(Value::Float64(*v));
        }
        let schema = Schema::new(attrs).unwrap();
        let cells = encode_record(&schema, &values).unwrap();
        let back = decode_record(&schema, &cells).unwrap();
        prop_assert_eq!(back, values);
    }

    /// Coalescing efficiency is always in (0, 1] and never improves when the
    /// stride grows.
    #[test]
    fn coalescing_efficiency_is_bounded_and_monotone(
        elem in 1u32..64,
        stride_a in 1u32..4096,
        stride_b in 1u32..4096,
        txn in prop::sample::select(vec![32u64, 128, 512]),
    ) {
        let (small, large) = if stride_a <= stride_b { (stride_a, stride_b) } else { (stride_b, stride_a) };
        let e_small = coalescing_efficiency(AccessPattern::Strided { stride_bytes: small.max(elem), elem_bytes: elem }, txn);
        let e_large = coalescing_efficiency(AccessPattern::Strided { stride_bytes: large.max(elem), elem_bytes: elem }, txn);
        prop_assert!(e_small > 0.0 && e_small <= 1.0);
        prop_assert!(e_large > 0.0 && e_large <= 1.0);
        prop_assert!(e_large <= e_small + 1e-9, "stride {small}->{large}: {e_small} -> {e_large}");
    }

    /// Snapshot isolation: whatever sequence of updates runs after a snapshot
    /// is taken, the snapshot always reads the values that were current when
    /// it was taken, and the live database reads the latest committed values.
    #[test]
    fn snapshots_are_immutable_under_arbitrary_updates(
        initial in proptest::collection::vec(any::<i32>(), 1..40),
        updates in proptest::collection::vec((0usize..40, any::<i32>()), 0..60),
        layout_choice in 0usize..3,
    ) {
        let layout = [Layout::Nsm, Layout::Dsm, Layout::PAPER_PAX][layout_choice];
        let db = Database::new(1);
        let table = db.create_table("t", Schema::homogeneous("c", 1, AttrType::Int32), layout).unwrap();
        let mut rids = Vec::new();
        for v in &initial {
            rids.push(db.insert(PartitionId(0), table, &[Value::Int32(*v)]).unwrap());
        }
        let snapshot = db.snapshot();
        let mut expected_live: Vec<i32> = initial.clone();
        for (idx, v) in &updates {
            if let Some(rid) = rids.get(idx % rids.len()) {
                db.update(*rid, &[Value::Int32(*v)]).unwrap();
                expected_live[idx % rids.len()] = *v;
            }
        }
        // Snapshot still sees the initial values.
        let frozen: Vec<i32> = snapshot.table(table).unwrap().column(0).iter().map(|c| *c as u32 as i32).collect();
        prop_assert_eq!(&frozen, &initial);
        // Live database sees the updated values.
        for (rid, expected) in rids.iter().zip(expected_live.iter()) {
            prop_assert_eq!(db.read(*rid).unwrap()[0].clone(), Value::Int32(*expected));
        }
        // Releasing the snapshot reports at most one superseded page per live page.
        let report = db.release_snapshot(&snapshot).unwrap();
        prop_assert!(report.pages_reclaimed as usize <= rids.len());
    }

    /// The lock table never grants incompatible locks and always frees
    /// records after release_all, whatever the interleaving.
    #[test]
    fn lock_table_compatibility_invariants(
        ops in proptest::collection::vec((0u32..4, 0u64..8, prop::bool::ANY), 1..200),
    ) {
        let mut table = LockTable::new();
        // holders[record] = (exclusive_owner, shared_holders)
        let mut model: std::collections::HashMap<u64, (Option<u32>, std::collections::HashSet<u32>)> =
            std::collections::HashMap::new();
        for (txn_id, record, exclusive) in ops {
            let token = TxnToken::new(txn_id, 0);
            let rid = h2tap_common::RecordId::new(PartitionId(0), TableId(0), record);
            let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
            let granted = table.acquire(rid, mode, token);
            let entry = model.entry(record).or_default();
            let compatible = match (entry.0, exclusive) {
                (Some(owner), _) => owner == txn_id,
                (None, true) => entry.1.is_empty() || (entry.1.len() == 1 && entry.1.contains(&txn_id)),
                (None, false) => true,
            };
            prop_assert_eq!(granted, compatible, "record {} txn {} exclusive {}", record, txn_id, exclusive);
            if granted {
                if exclusive {
                    entry.0 = Some(txn_id);
                    entry.1.clear();
                } else if entry.0.is_none() {
                    entry.1.insert(txn_id);
                }
            }
        }
        // Releasing everything from every transaction empties the table.
        for txn_id in 0..4 {
            table.release_all(TxnToken::new(txn_id, 0));
        }
        prop_assert!(table.is_empty());
    }

    /// Values survive a write/read round trip through a multi-partition
    /// database regardless of which partition they land on.
    #[test]
    fn database_read_back_matches_inserted_values(
        rows in proptest::collection::vec((any::<i64>(), -1e9f64..1e9f64), 1..50),
        partitions in 1usize..5,
    ) {
        let db = Database::new(partitions);
        let schema = Schema::new(vec![
            h2tap_common::Attribute::new("k", AttrType::Int64),
            h2tap_common::Attribute::new("v", AttrType::Float64),
        ]).unwrap();
        let table = db.create_table("t", schema, Layout::Dsm).unwrap();
        let mut rids = Vec::new();
        for (i, (k, v)) in rows.iter().enumerate() {
            let p = PartitionId((i % partitions) as u32);
            rids.push((db.insert(p, table, &[Value::Int64(*k), Value::Float64(*v)]).unwrap(), *k, *v));
        }
        for (rid, k, v) in rids {
            let rec = db.read(rid).unwrap();
            prop_assert_eq!(rec[0].clone(), Value::Int64(k));
            prop_assert_eq!(rec[1].clone(), Value::Float64(v));
        }
        prop_assert_eq!(db.row_count(table).unwrap(), rows.len() as u64);
        prop_assert_eq!(db.live_epoch(), Epoch(0));
    }

    /// Arbitrary values encode to cells without panicking and numeric types
    /// round-trip their numeric interpretation.
    #[test]
    fn value_cells_preserve_numeric_interpretation(ty in 0usize..4, seed in any::<i64>()) {
        let ty = [AttrType::Int32, AttrType::Int64, AttrType::Float64, AttrType::Date][ty];
        let value = match ty {
            AttrType::Int32 => Value::Int32(seed as i32),
            AttrType::Int64 => Value::Int64(seed),
            AttrType::Date => Value::Date(seed as i32),
            _ => Value::Float64(seed as f64 / 1e3),
        };
        let cell = h2tap_storage::encode_value(&value);
        let decoded = h2tap_storage::decode_cell(ty, cell);
        prop_assert_eq!(decoded.as_f64(), value.as_f64());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Strategy sanity: generated values always match their declared type.
    #[test]
    fn value_strategies_match_types(v in arbitrary_value(AttrType::Int32)) {
        prop_assert!(matches!(v, Value::Int32(_)));
    }
}
