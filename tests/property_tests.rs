//! Property-style tests over the core data structures and invariants.
//!
//! The registry `proptest` crate is unavailable in the offline build
//! environment, so these properties are exercised with the workspace's own
//! deterministic PRNG ([`h2tap_common::rng::SplitMixRng`]): each test draws
//! many random cases from fixed seeds, which keeps failures reproducible
//! while still sweeping a wide input space.

use h2tap_common::rng::SplitMixRng;
use h2tap_common::{chunk_shard, AttrType, Epoch, PartitionId, Schema, TableId, Value};
use h2tap_gpu_sim::{coalescing_efficiency, AccessPattern};
use h2tap_olap::{merge_scan_partials, shard_chunk_indexes, shard_rows, ScanChunkPartial};
use h2tap_oltp::{LockMode, LockTable, TxnToken};
use h2tap_storage::{decode_record, encode_record, Database, Layout};

const CASES: usize = 64;

fn rand_i64(rng: &mut SplitMixRng) -> i64 {
    rng.next_u64() as i64
}

fn rand_i32(rng: &mut SplitMixRng) -> i32 {
    rng.next_u64() as i32
}

fn rand_f64(rng: &mut SplitMixRng) -> f64 {
    (rng.next_f64() - 0.5) * 2e12
}

/// Encoding a record to cells and back is lossless for every fixed-width
/// type (strings are hashed by design, so they are excluded here).
#[test]
fn record_codec_roundtrips() {
    let mut rng = SplitMixRng::new(0xC0DEC);
    for _ in 0..CASES {
        let ints = 1 + rng.next_below(5) as usize;
        let floats = 1 + rng.next_below(5) as usize;
        let mut attrs = Vec::new();
        let mut values = Vec::new();
        for i in 0..ints {
            attrs.push(h2tap_common::Attribute::new(format!("i{i}"), AttrType::Int64));
            values.push(Value::Int64(rand_i64(&mut rng)));
        }
        for i in 0..floats {
            attrs.push(h2tap_common::Attribute::new(format!("f{i}"), AttrType::Float64));
            values.push(Value::Float64(rand_f64(&mut rng)));
        }
        let schema = Schema::new(attrs).unwrap();
        let cells = encode_record(&schema, &values).unwrap();
        let back = decode_record(&schema, &cells).unwrap();
        assert_eq!(back, values);
    }
}

/// Coalescing efficiency is always in (0, 1] and never improves when the
/// stride grows.
#[test]
fn coalescing_efficiency_is_bounded_and_monotone() {
    let mut rng = SplitMixRng::new(0xC0A1);
    for _ in 0..CASES * 4 {
        let elem = 1 + rng.next_below(63) as u32;
        let stride_a = 1 + rng.next_below(4095) as u32;
        let stride_b = 1 + rng.next_below(4095) as u32;
        let txn = [32u64, 128, 512][rng.next_below(3) as usize];
        let (small, large) = if stride_a <= stride_b { (stride_a, stride_b) } else { (stride_b, stride_a) };
        let e_small =
            coalescing_efficiency(AccessPattern::Strided { stride_bytes: small.max(elem), elem_bytes: elem }, txn);
        let e_large =
            coalescing_efficiency(AccessPattern::Strided { stride_bytes: large.max(elem), elem_bytes: elem }, txn);
        assert!(e_small > 0.0 && e_small <= 1.0);
        assert!(e_large > 0.0 && e_large <= 1.0);
        assert!(e_large <= e_small + 1e-9, "stride {small}->{large}: {e_small} -> {e_large}");
    }
}

/// Snapshot isolation: whatever sequence of updates runs after a snapshot
/// is taken, the snapshot always reads the values that were current when
/// it was taken, and the live database reads the latest committed values.
#[test]
fn snapshots_are_immutable_under_arbitrary_updates() {
    let mut rng = SplitMixRng::new(0x5AF5);
    for case in 0..CASES {
        let layout = [Layout::Nsm, Layout::Dsm, Layout::PAPER_PAX][case % 3];
        let initial: Vec<i32> = (0..1 + rng.next_below(39)).map(|_| rand_i32(&mut rng)).collect();
        let db = Database::new(1);
        let table = db.create_table("t", Schema::homogeneous("c", 1, AttrType::Int32), layout).unwrap();
        let mut rids = Vec::new();
        for v in &initial {
            rids.push(db.insert(PartitionId(0), table, &[Value::Int32(*v)]).unwrap());
        }
        let snapshot = db.snapshot();
        let mut expected_live: Vec<i32> = initial.clone();
        for _ in 0..rng.next_below(60) {
            let idx = rng.next_below(rids.len() as u64) as usize;
            let v = rand_i32(&mut rng);
            db.update(rids[idx], &[Value::Int32(v)]).unwrap();
            expected_live[idx] = v;
        }
        // Snapshot still sees the initial values.
        let frozen: Vec<i32> = snapshot.table(table).unwrap().column(0).iter().map(|c| *c as u32 as i32).collect();
        assert_eq!(frozen, initial);
        // Live database sees the updated values.
        for (rid, expected) in rids.iter().zip(expected_live.iter()) {
            assert_eq!(db.read(*rid).unwrap()[0], Value::Int32(*expected));
        }
        // Releasing the snapshot reports at most one superseded page per live page.
        let report = db.release_snapshot(&snapshot).unwrap();
        assert!(report.pages_reclaimed as usize <= rids.len());
    }
}

/// The lock table never grants incompatible locks and always frees
/// records after release_all, whatever the interleaving.
#[test]
fn lock_table_compatibility_invariants() {
    let mut rng = SplitMixRng::new(0x10CC);
    for _ in 0..CASES {
        let mut table = LockTable::new();
        // holders[record] = (exclusive_owner, shared_holders)
        let mut model: std::collections::HashMap<u64, (Option<u32>, std::collections::HashSet<u32>)> =
            std::collections::HashMap::new();
        for _ in 0..1 + rng.next_below(199) {
            let txn_id = rng.next_below(4) as u32;
            let record = rng.next_below(8);
            let exclusive = rng.next_below(2) == 1;
            let token = TxnToken::new(txn_id, 0);
            let rid = h2tap_common::RecordId::new(PartitionId(0), TableId(0), record);
            let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
            let granted = table.acquire(rid, mode, token);
            let entry = model.entry(record).or_default();
            let compatible = match (entry.0, exclusive) {
                (Some(owner), _) => owner == txn_id,
                (None, true) => entry.1.is_empty() || (entry.1.len() == 1 && entry.1.contains(&txn_id)),
                (None, false) => true,
            };
            assert_eq!(granted, compatible, "record {record} txn {txn_id} exclusive {exclusive}");
            if granted {
                if exclusive {
                    entry.0 = Some(txn_id);
                    entry.1.clear();
                } else if entry.0.is_none() {
                    entry.1.insert(txn_id);
                }
            }
        }
        // Releasing everything from every transaction empties the table.
        for txn_id in 0..4 {
            table.release_all(TxnToken::new(txn_id, 0));
        }
        assert!(table.is_empty());
    }
}

/// Values survive a write/read round trip through a multi-partition
/// database regardless of which partition they land on.
#[test]
fn database_read_back_matches_inserted_values() {
    let mut rng = SplitMixRng::new(0xDBDB);
    for _ in 0..CASES {
        let partitions = 1 + rng.next_below(4) as usize;
        let rows: Vec<(i64, f64)> =
            (0..1 + rng.next_below(49)).map(|_| (rand_i64(&mut rng), rng.next_f64() * 2e9 - 1e9)).collect();
        let db = Database::new(partitions);
        let schema = Schema::new(vec![
            h2tap_common::Attribute::new("k", AttrType::Int64),
            h2tap_common::Attribute::new("v", AttrType::Float64),
        ])
        .unwrap();
        let table = db.create_table("t", schema, Layout::Dsm).unwrap();
        let mut rids = Vec::new();
        for (i, (k, v)) in rows.iter().enumerate() {
            let p = PartitionId((i % partitions) as u32);
            rids.push((db.insert(p, table, &[Value::Int64(*k), Value::Float64(*v)]).unwrap(), *k, *v));
        }
        for (rid, k, v) in rids {
            let rec = db.read(rid).unwrap();
            assert_eq!(rec[0], Value::Int64(k));
            assert_eq!(rec[1], Value::Float64(v));
        }
        assert_eq!(db.row_count(table).unwrap(), rows.len() as u64);
        assert_eq!(db.live_epoch(), Epoch(0));
    }
}

/// The multi-GPU chunk shard is a partition for every chunk count and shard
/// count: each chunk is assigned exactly once, shards are pairwise disjoint,
/// their union covers the table, and the assignment agrees with the
/// canonical [`chunk_shard`] contract. Row totals are conserved too.
#[test]
fn shard_assignment_is_a_partition() {
    let mut rng = SplitMixRng::new(0x5AD5);
    for _ in 0..CASES * 2 {
        let chunk_count = rng.next_below(500) as usize;
        let devices = 1 + rng.next_below(5) as usize;
        let shards = shard_chunk_indexes(chunk_count, devices);
        assert_eq!(shards.len(), devices);
        let mut seen = vec![false; chunk_count];
        for (d, shard) in shards.iter().enumerate() {
            for &chunk in shard {
                assert!(chunk < chunk_count, "assigned chunk out of range");
                assert!(!seen[chunk], "chunk {chunk} assigned to more than one shard");
                seen[chunk] = true;
                assert_eq!(chunk_shard(chunk, devices), d, "assignment must follow the canonical contract");
            }
        }
        assert!(seen.iter().all(|&s| s), "every chunk must be assigned: union covers the table");
        // Round-robin balance: shard sizes differ by at most one chunk.
        let sizes: Vec<usize> = shards.iter().map(|s| s.len()).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1, "{sizes:?}");
        // Sharded row counts conserve the table's rows.
        let rows = rng.next_below(2_000_000);
        let per = shard_rows(rows, devices);
        assert_eq!(per.iter().sum::<u64>(), rows, "sharding must conserve rows");
    }
}

/// The merged scan answer is invariant under device completion order:
/// however the shards finish, partials are reassembled into ascending chunk
/// order before merging, so the f64 result is bit-equal to a sequential
/// evaluation. This is the property that makes the multi-GPU site's answers
/// byte-identical to the single-threaded ones.
#[test]
fn merge_order_is_invariant_under_device_completion_order() {
    let mut rng = SplitMixRng::new(0x33E6);
    for _ in 0..CASES {
        let chunk_count = 1 + rng.next_below(64) as usize;
        let devices = 1 + rng.next_below(5) as usize;
        let partials: Vec<ScanChunkPartial> = (0..chunk_count)
            .map(|_| ScanChunkPartial { value: rand_f64(&mut rng), qualifying: rng.next_below(1 << 16) })
            .collect();
        let (sequential_value, sequential_rows) = merge_scan_partials(partials.iter().copied());

        // Simulate devices completing in a random order: each shard finishes
        // as a unit, its chunk partials land in a slot table, and the merge
        // walks the slots in ascending chunk order.
        let shards = shard_chunk_indexes(chunk_count, devices);
        let mut completion: Vec<usize> = (0..devices).collect();
        // Fisher-Yates with the deterministic rng.
        for i in (1..completion.len()).rev() {
            let j = rng.next_below((i + 1) as u64) as usize;
            completion.swap(i, j);
        }
        let mut slots: Vec<Option<ScanChunkPartial>> = vec![None; chunk_count];
        for &device in &completion {
            for &chunk in &shards[device] {
                slots[chunk] = Some(partials[chunk]);
            }
        }
        let reassembled = slots.into_iter().map(|p| p.expect("partition covers every chunk"));
        let (value, rows) = merge_scan_partials(reassembled);
        assert_eq!(value.to_bits(), sequential_value.to_bits(), "completion order {completion:?} changed bits");
        assert_eq!(rows, sequential_rows);
    }
}

/// Arbitrary values encode to cells without panicking and numeric types
/// round-trip their numeric interpretation.
#[test]
fn value_cells_preserve_numeric_interpretation() {
    let mut rng = SplitMixRng::new(0xCE11);
    for _ in 0..CASES * 4 {
        let ty = [AttrType::Int32, AttrType::Int64, AttrType::Float64, AttrType::Date][rng.next_below(4) as usize];
        let seed = rand_i64(&mut rng);
        let value = match ty {
            AttrType::Int32 => Value::Int32(seed as i32),
            AttrType::Int64 => Value::Int64(seed),
            AttrType::Date => Value::Date(seed as i32),
            _ => Value::Float64(seed as f64 / 1e3),
        };
        let cell = h2tap_storage::encode_value(&value);
        let decoded = h2tap_storage::decode_cell(ty, cell);
        assert_eq!(decoded.as_f64(), value.as_f64());
    }
}
