//! End-to-end observability: traces, metrics and placement explanations
//! captured from real dispatches through the full engine.
//!
//! The tentpole guarantee under test: with tracing enabled, a
//! brand-revenue join leaves a trace whose placement / cache / materialise
//! / kernel / merge spans sum up consistently with the site's reported
//! `ExecBreakdown`; with tracing disabled (the default) the ring stays
//! empty while metrics and placement explanations still populate.

use caldera::{Caldera, CalderaConfig, OlapTarget, SnapshotPolicy, SpanKind};
use h2tap_obs::json_is_valid;
use h2tap_storage::Layout;
use h2tap_workloads::tpch::{self, brand_revenue_plan};

const ROWS: u64 = 20_000;

fn join_engine(mut config: CalderaConfig) -> (Caldera, h2tap_common::TableId, h2tap_common::TableId) {
    config.snapshot_policy = SnapshotPolicy::EveryN { queries: 100 };
    let mut builder = Caldera::builder(config);
    let lineitem = tpch::load_lineitem(&mut builder, Layout::PAPER_PAX, ROWS, 7).unwrap();
    let part = tpch::load_part(&mut builder, Layout::PAPER_PAX, ROWS / 8, 7).unwrap();
    (builder.start().unwrap(), lineitem, part)
}

#[test]
fn traced_brand_revenue_join_covers_every_phase() {
    let mut config = CalderaConfig::with_workers(2);
    config.observability.tracing = true;
    let (caldera, lineitem, part) = join_engine(config);
    let plan = brand_revenue_plan(30);
    let out = caldera.run_olap_plan_on(lineitem, Some(part), &plan, OlapTarget::Gpu).unwrap();
    assert!(!out.groups.is_empty());

    let spans = caldera.trace_spans();
    let count = |kind: SpanKind| spans.iter().filter(|s| s.event.kind == kind).count();
    assert_eq!(count(SpanKind::Placement), 1, "one dispatch, one placement span");
    assert!(count(SpanKind::CacheLookup) >= 2, "column and hash-table probes");
    assert!(count(SpanKind::Materialise) >= 1, "cold cache: columns were materialised");
    assert!(count(SpanKind::HashBuild) >= 1, "cold cache: the hash table was built");
    assert!(count(SpanKind::Kernel) >= 3, "select/probe/aggregate kernels");
    assert!(count(SpanKind::Merge) >= 1, "grouped plans end in merge_groups");

    // Every span of this engine belongs to query 1 and carries the
    // metadata its phase promises.
    assert!(spans.iter().all(|s| s.query == 1));
    assert!(spans
        .iter()
        .filter(|s| s.event.kind == SpanKind::CacheLookup)
        .all(|s| s.event.hit == Some(false) && s.event.table.is_some() && s.event.epoch.is_some()));
    assert!(spans
        .iter()
        .filter(|s| matches!(s.event.kind, SpanKind::Materialise | SpanKind::HashBuild))
        .all(|s| s.event.bytes > 0));
    assert!(spans
        .iter()
        .filter(|s| matches!(s.event.kind, SpanKind::Kernel | SpanKind::Merge))
        .all(|s| s.event.site == Some(OlapTarget::Gpu)));

    // Kernel + merge spans are in simulated seconds, the same frame as the
    // outcome's breakdown: with host-resident (UVA) data every kernel's
    // time splits into streamed time + launch overhead, so the span sum
    // must reproduce those two components (compute overlaps the stream)
    // and never exceed the query's total simulated time.
    let site_secs: f64 = spans
        .iter()
        .filter(|s| matches!(s.event.kind, SpanKind::Kernel | SpanKind::Merge))
        .map(|s| s.event.dur_secs)
        .sum();
    let expected = out.breakdown.stream_secs + out.breakdown.overhead_secs;
    assert!(
        (site_secs - expected).abs() <= 1e-9 + 1e-6 * expected,
        "kernel+merge spans sum to {site_secs}, breakdown says {expected}"
    );
    assert!(site_secs <= out.time.as_secs_f64() + 1e-9);
    // The last site span carries the full breakdown for the query.
    let last = spans.iter().rfind(|s| matches!(s.event.kind, SpanKind::Kernel | SpanKind::Merge)).unwrap();
    assert_eq!(last.event.breakdown.unwrap(), out.breakdown);

    // The exported Chrome trace is valid JSON with one event per span.
    let json = caldera.chrome_trace_json();
    assert!(json_is_valid(&json));
    assert_eq!(json.matches("\"ph\":\"X\"").count(), spans.len());

    // A warm repeat of the same plan probes the cache and hits.
    caldera.run_olap_plan_on(lineitem, Some(part), &plan, OlapTarget::Gpu).unwrap();
    let spans = caldera.trace_spans();
    assert!(spans
        .iter()
        .filter(|s| s.query == 2 && s.event.kind == SpanKind::CacheLookup)
        .all(|s| s.event.hit == Some(true)));
    assert!(!spans.iter().any(|s| s.query == 2 && s.event.kind == SpanKind::Materialise));
    caldera.shutdown();
}

#[test]
fn tracing_is_off_by_default_but_metrics_and_explanations_still_flow() {
    let (caldera, lineitem, part) = join_engine(CalderaConfig::with_workers(2));
    let plan = brand_revenue_plan(30);
    caldera.run_olap_plan(lineitem, Some(part), &plan).unwrap();
    caldera.run_olap_plan(lineitem, Some(part), &plan).unwrap();
    assert!(caldera.trace_spans().is_empty(), "no spans unless observability.tracing is set");

    let stats = caldera.shutdown();
    // Latency histograms and query counters populate regardless.
    assert_eq!(stats.metrics.counter("olap.queries"), Some(2));
    let latency = stats.metrics.histogram("olap.latency.secs").unwrap();
    assert_eq!(latency.count(), 2);
    assert!(latency.p99().unwrap() >= latency.p50().unwrap());
    // The plan-cache mirror keeps counters and gauges in their families.
    assert_eq!(stats.metrics.counter("plan_cache.hash_misses"), Some(stats.plan_cache.hash_misses));
    assert!(stats.metrics.gauge("plan_cache.occupancy_bytes").is_some());
    // Every dispatch left a placement explanation with all site estimates.
    assert_eq!(stats.placements.len(), 2);
    for p in &stats.placements {
        assert_eq!(p.estimates.len(), stats.olap_sites.len());
        assert!(!p.forced);
        assert!(p.regret_secs >= 0.0);
        assert_eq!(p.executed, p.chosen);
    }
    assert_eq!(stats.calibration.regret.decisions, 2);
}

#[test]
fn forced_runs_surface_regret_against_the_placement_oracle() {
    // Let placement pick its favourite site freely, then force the other
    // one: the forced dispatch must be explained as a misplacement with
    // positive regret against the oracle's choice.
    let mut config = CalderaConfig::with_workers(2);
    config.olap_cpu_cores = 8;
    let (caldera, lineitem, _) = join_engine(config);
    let q =
        h2tap_common::ScanAggQuery::aggregate_only(h2tap_common::AggExpr::SumColumns(vec![tpch::columns::QUANTITY]));
    let free = caldera.run_olap(lineitem, &q).unwrap();
    let other = if free.site == OlapTarget::Cpu { OlapTarget::Gpu } else { OlapTarget::Cpu };
    caldera.run_olap_on(lineitem, &q, other).unwrap();
    let stats = caldera.shutdown();
    assert_eq!(stats.placements.len(), 2, "forced dispatches are explained too");
    let forced = &stats.placements[1];
    assert!(forced.forced);
    assert_eq!(forced.executed, other);
    assert!(forced.misplaced, "the {other:?} estimate was not the argmin");
    assert!(forced.regret_secs > 0.0);
    assert!(forced.estimate(free.site).unwrap() < forced.estimate(other).unwrap());
    // ... but only heuristic decisions count toward the regret summary.
    assert_eq!(stats.calibration.regret.decisions, 1);
    assert_eq!(stats.calibration.regret.misplacements, 0);
}
