//! Validates the software-managed coherence discipline the paper's OLTP
//! protocol relies on, using the `h2tap-mpmsg` cache model: the explicit
//! write-back / invalidate points (server before granting, client before
//! releasing) are exactly what keeps readers from seeing stale data on
//! non-cache-coherent hardware.

use h2tap_common::PartitionId;
use h2tap_mpmsg::{build_fabric, CoherenceDomain, CoreId, LineId, OwnershipRegistry, SoftwareCache};
use std::sync::Arc;
use std::time::Duration;

/// Replays the paper's remote-update protocol over the software cache model:
/// server owns the record, client updates it remotely, and both sides insert
/// the required write-backs/invalidations. The reader must observe the final
/// version.
#[test]
fn remote_update_protocol_is_coherent_with_explicit_cache_management() {
    let domain = CoherenceDomain::new();
    let record = LineId(42);

    let mut server_cache = SoftwareCache::new(Arc::clone(&domain));
    let mut client_cache = SoftwareCache::new(Arc::clone(&domain));

    // The server has previously updated the record locally (dirty in cache).
    let v1 = server_cache.write(record);
    assert_eq!(v1, 1);

    // Client requests the record: before granting, the server writes back its
    // dirty line (protocol point 1).
    assert!(server_cache.writeback_line(record));
    // The client starts from a clean cache (or invalidates its stale copy).
    client_cache.invalidate_line(record);
    assert_eq!(client_cache.read(record), 1, "client must see the server's write-back");

    // Client updates the record and, before releasing the lock, writes back
    // (protocol point 2).
    let v2 = client_cache.write(record);
    assert_eq!(v2, 2);
    client_cache.writeback_line(record);

    // Server invalidates before its next local read and sees the update.
    server_cache.invalidate_line(record);
    assert_eq!(server_cache.read(record), 2);

    assert_eq!(domain.writeback_count(), 2);
    // Only caches that actually held a copy record an invalidation (the
    // client's first access was a cold miss).
    assert!(domain.invalidation_count() >= 1);
}

/// Without the explicit invalidation the reader keeps serving its stale
/// cached copy — the failure a real non-CC machine would expose, and the
/// reason the protocol's write-back/invalidate points are not optional.
#[test]
fn omitting_invalidation_exposes_stale_reads() {
    let domain = CoherenceDomain::new();
    let record = LineId(7);
    let mut owner = SoftwareCache::new(Arc::clone(&domain));
    let mut reader = SoftwareCache::new(Arc::clone(&domain));

    assert_eq!(reader.read(record), 0); // reader caches version 0
    owner.write(record);
    owner.writeback();

    // Reader skips the invalidation step: stale.
    assert_eq!(reader.read(record), 0);
    assert!(reader.is_stale(record));

    // With the invalidation, it becomes coherent again.
    reader.invalidate_line(record);
    assert_eq!(reader.read(record), 1);
}

/// The ownership registry (strict mode) enforces the partition-per-core
/// discipline that lets Caldera dispense with cross-core synchronisation.
#[test]
fn strict_ownership_blocks_cross_partition_access() {
    let registry = OwnershipRegistry::strict();
    registry.assign(PartitionId(0), CoreId(0));
    registry.assign(PartitionId(1), CoreId(1));
    assert!(registry.check_access(CoreId(0), PartitionId(0)).is_ok());
    assert!(registry.check_access(CoreId(0), PartitionId(1)).is_err());
    // Migration re-assigns ownership atomically.
    registry.assign(PartitionId(1), CoreId(0));
    assert!(registry.check_access(CoreId(0), PartitionId(1)).is_ok());
    assert!(registry.check_access(CoreId(1), PartitionId(1)).is_err());
}

/// The message fabric delivers request/reply traffic across real threads —
/// the transport Caldera's lock protocol rides on.
#[test]
fn fabric_supports_request_reply_across_threads() {
    let (post, mut mail, stats) = build_fabric::<(&'static str, u64)>(3, 64);
    let server_mail = mail.remove(2);
    let server_post = post[2].clone();
    let server = std::thread::spawn(move || {
        let mut served = 0;
        while served < 2 {
            if let Some(env) = server_mail.recv_timeout(Duration::from_secs(1)).unwrap() {
                let (tag, v) = env.payload;
                assert_eq!(tag, "lock-request");
                server_post.send(env.from, ("lock-grant", v + 100)).unwrap();
                served += 1;
            }
        }
    });
    for (i, mailbox) in mail.iter().enumerate() {
        post[i].send(CoreId(2), ("lock-request", i as u64)).unwrap();
        let reply = mailbox.recv_timeout(Duration::from_secs(1)).unwrap().unwrap();
        assert_eq!(reply.payload, ("lock-grant", i as u64 + 100));
    }
    server.join().unwrap();
    assert_eq!(stats.sent(), 4);
    assert_eq!(stats.delivered(), 4);
}
