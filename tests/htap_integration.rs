//! End-to-end integration tests spanning the whole engine: OLTP + snapshots +
//! GPU OLAP + baselines over the paper's workloads.

use caldera::{Caldera, CalderaConfig, SnapshotPolicy};
use h2tap_common::{PartitionId, Value};
use h2tap_oltp::OltpConfig;
use h2tap_storage::Layout;
use h2tap_workloads::multisite::{
    load_multisite_caldera, multisite_partitioner, CalderaMultisiteGenerator, MultisiteConfig,
};
use h2tap_workloads::tpcc::{self, load_tpcc, tpcc_partitioner, NewOrderGenerator, TpccConfig};
use h2tap_workloads::tpch::{self, q6};
use h2tap_workloads::ycsb::{YcsbConfig, YcsbGenerator};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn q6_matches_the_scalar_reference_on_all_layouts() {
    let rows = 40_000u64;
    let expected = tpch::q6_reference(rows, 7);
    for layout in [Layout::Dsm, Layout::PAPER_PAX, Layout::Nsm] {
        let mut builder = Caldera::builder(CalderaConfig::with_workers(2));
        let table = tpch::load_lineitem(&mut builder, layout, rows, 7).unwrap();
        let caldera = builder.start().unwrap();
        let outcome = caldera.run_olap(table, &q6()).unwrap();
        assert!(
            (outcome.value - expected).abs() < 1e-6 * expected.abs().max(1.0),
            "{layout:?}: {} vs {expected}",
            outcome.value
        );
        caldera.shutdown();
    }
}

#[test]
fn olap_queries_see_exactly_the_committed_updates_of_their_snapshot() {
    let rows = 20_000u64;
    let workers = 2usize;
    let mut config = CalderaConfig::with_workers(workers);
    config.snapshot_policy = SnapshotPolicy::PerQuery;
    let mut builder = Caldera::builder(config);
    let table = tpch::load_lineitem(&mut builder, Layout::PAPER_PAX, rows, 13).unwrap();
    let caldera = builder.start().unwrap();

    // Sum of quantity before any update.
    let sum_quantity =
        h2tap_common::ScanAggQuery::aggregate_only(h2tap_common::AggExpr::SumColumns(vec![tpch::columns::QUANTITY]));
    let before = caldera.run_olap(table, &sum_quantity).unwrap().value;

    // Commit 100 transactions, each adding exactly 1.0 to one record's quantity.
    for key in 0..100i64 {
        caldera
            .execute_txn(Arc::new(move |ctx| {
                let mut rec = ctx.read_for_update(table, key)?;
                let q = rec[tpch::columns::QUANTITY].as_f64().unwrap();
                rec[tpch::columns::QUANTITY] = Value::Float64(q + 1.0);
                ctx.update(table, key, rec)
            }))
            .unwrap();
    }
    let after = caldera.run_olap(table, &sum_quantity).unwrap().value;
    assert!((after - before - 100.0).abs() < 1e-6, "before {before} after {after}");
    let stats = caldera.shutdown();
    assert_eq!(stats.oltp.committed, 100);
    assert!(stats.cow.pages_copied > 0, "updates after a snapshot must shadow-copy");
}

#[test]
fn concurrent_oltp_and_olap_preserve_snapshot_consistency() {
    // While the YCSB generator hammers the table, every OLAP query must see a
    // quantity sum that is an exact multiple of 1.0 away from the initial sum
    // (each committed RMW adds exactly 1.0) — i.e. never a torn value.
    let rows = 30_000u64;
    let workers = 2usize;
    let mut config = CalderaConfig::with_workers(workers);
    config.oltp = OltpConfig::with_workers(workers);
    config.snapshot_policy = SnapshotPolicy::PerQuery;
    let mut builder = Caldera::builder(config);
    let table = tpch::load_lineitem(&mut builder, Layout::PAPER_PAX, rows, 3).unwrap();
    let initial = {
        // Reference initial sum from the generator itself.
        let mut rng = h2tap_common::rng::SplitMixRng::new(3);
        (0..rows).map(|k| tpch::lineitem_row(k, &mut rng)[tpch::columns::QUANTITY].as_f64().unwrap()).sum::<f64>()
    };
    builder.set_generator(Arc::new(YcsbGenerator::new(YcsbConfig::paper_default(table, rows, workers as u64))));
    let caldera = builder.start().unwrap();
    let sum_quantity =
        h2tap_common::ScanAggQuery::aggregate_only(h2tap_common::AggExpr::SumColumns(vec![tpch::columns::QUANTITY]));

    let caldera_ref = &caldera;
    std::thread::scope(|scope| {
        let oltp = scope.spawn(move || caldera_ref.run_oltp_window(Duration::from_millis(400)));
        for _ in 0..6 {
            let value = caldera_ref.run_olap(table, &sum_quantity).unwrap().value;
            let delta = value - initial;
            assert!(delta >= -1e-6, "sum went backwards: {delta}");
            let nearest = delta.round();
            assert!(
                (delta - nearest).abs() < 1e-3,
                "snapshot exposed a non-integer number of committed increments: {delta}"
            );
        }
        oltp.join().unwrap().unwrap();
    });
    caldera.shutdown();
}

#[test]
fn tpcc_neworder_runs_and_preserves_order_counts() {
    let warehouses = 2usize;
    let cfg = TpccConfig { customers_per_district: 30, items: 200, ..TpccConfig::default() };
    let mut config = CalderaConfig::with_workers(warehouses);
    config.oltp.seed = 99;
    let mut builder = Caldera::builder(config);
    builder.set_partitioner(Arc::new(tpcc_partitioner(warehouses))).unwrap();
    let tables = load_tpcc(&mut builder, warehouses, cfg).unwrap();
    builder.set_generator(Arc::new(NewOrderGenerator::new(tables, cfg, warehouses)));
    let caldera = builder.start().unwrap();
    let window = caldera.run_oltp_window(Duration::from_millis(300)).unwrap();
    assert!(window.stats.committed > 50, "committed {}", window.stats.committed);
    // Every committed NewOrder inserted exactly one ORDERS and one NEW_ORDER
    // record.
    let db = Arc::clone(caldera.database());
    let stats = caldera.shutdown();
    let orders = db.row_count(tables.orders).unwrap();
    let new_orders = db.row_count(tables.new_order).unwrap();
    assert_eq!(orders, stats.oltp.committed, "orders {} committed {}", orders, stats.oltp.committed);
    assert_eq!(new_orders, stats.oltp.committed);
    // Order lines: between 5 and 15 per committed order.
    let order_lines = db.row_count(tables.order_line).unwrap();
    assert!(order_lines >= 5 * orders && order_lines <= 15 * orders);
}

#[test]
fn multisite_workload_commits_at_every_percentage() {
    let partitions = 2usize;
    let rows_per_partition = 5_000u64;
    for pct in [0u32, 50, 100] {
        let mut config = CalderaConfig::with_workers(partitions);
        config.oltp.seed = 0xAB;
        let mut builder = Caldera::builder(config);
        builder.set_partitioner(Arc::new(multisite_partitioner(partitions))).unwrap();
        let table = load_multisite_caldera(&mut builder, rows_per_partition, partitions).unwrap();
        let cfg = MultisiteConfig::paper(table, rows_per_partition, partitions, pct);
        builder.set_generator(Arc::new(CalderaMultisiteGenerator::new(cfg)));
        let caldera = builder.start().unwrap();
        let window = caldera.run_oltp_window(Duration::from_millis(200)).unwrap();
        assert!(window.stats.committed > 100, "pct {pct}: committed {}", window.stats.committed);
        let stats = caldera.shutdown();
        if pct == 0 {
            assert_eq!(stats.oltp.remote_requests, 0, "single-site transactions must not message");
        } else {
            assert!(stats.oltp.remote_requests > 0, "multi-site transactions must message");
        }
    }
}

#[test]
fn scheduler_migration_works_while_the_engine_runs() {
    let mut builder = Caldera::builder(CalderaConfig::with_workers(3));
    let table = builder
        .create_table("t", h2tap_common::Schema::homogeneous("c", 2, h2tap_common::AttrType::Int64), Layout::Dsm)
        .unwrap();
    for k in 0..30 {
        builder.load(table, k, &[Value::Int64(k), Value::Int64(0)]).unwrap();
    }
    let caldera = builder.start().unwrap();
    use h2tap_scheduler::ArchipelagoKind;
    caldera.scheduler().migrate_core(2, ArchipelagoKind::TaskParallel, ArchipelagoKind::DataParallel).unwrap();
    assert_eq!(caldera.scheduler().archipelago(ArchipelagoKind::DataParallel).core_count(), 1);
    // Transactions still run after the (logical) migration.
    caldera.execute_txn_on(PartitionId(0), Arc::new(move |ctx| ctx.read(table, 0).map(|_| ()))).unwrap();
    caldera.shutdown();
}

#[test]
fn tpcc_key_encoding_routes_every_access_to_the_right_partition() {
    // A NewOrder hosted on warehouse 1 must never issue remote requests when
    // all its items are home-supplied.
    let warehouses = 2usize;
    let cfg = TpccConfig { customers_per_district: 10, items: 50, remote_line_pct: 0, ..TpccConfig::default() };
    let mut builder = Caldera::builder(CalderaConfig::with_workers(warehouses));
    builder.set_partitioner(Arc::new(tpcc_partitioner(warehouses))).unwrap();
    let tables = load_tpcc(&mut builder, warehouses, cfg).unwrap();
    let caldera = builder.start().unwrap();
    caldera
        .execute_txn_on(
            PartitionId(1),
            Arc::new(move |ctx| {
                let _ = ctx.read(tables.warehouse, tpcc::keys::warehouse(1))?;
                let _ = ctx.read(tables.item, tpcc::keys::item(1, 7))?;
                let mut stock = ctx.read_for_update(tables.stock, tpcc::keys::stock(1, 7))?;
                stock[2] = Value::Int64(5);
                ctx.update(tables.stock, tpcc::keys::stock(1, 7), stock)?;
                assert_eq!(ctx.remote_lock_count(), 0);
                Ok(())
            }),
        )
        .unwrap();
    let stats = caldera.shutdown();
    assert_eq!(stats.oltp.remote_requests, 0);
}
